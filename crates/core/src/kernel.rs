//! The incremental simulation kernel: greedy stepping with per-port
//! wake-lists.
//!
//! The legacy step loop ([`step_all`](crate::step::step_all), driven by
//! [`interpreter::run`](crate::interpreter::run)) re-examines every flit of
//! every in-flight travel on every step, so a run costs
//! `O(steps × travels × flits)` even when most worms are delivered or
//! permanently blocked. The kernel replaces the full rescan with incremental
//! scheduling built on three observations:
//!
//! 1. **Delivered travels never move again** — they are drained from the
//!    loop for good (the legacy loop already does this).
//! 2. **A fully blocked travel is gated by exactly one port**: its head's
//!    next hop (see [`blocked_port_with`]). Body flits only wait on ports
//!    the worm itself owns, which drain exclusively through the worm's own
//!    moves, and a head at the destination port can always eject.
//! 3. **Only a `leave` or `release` on that port can unblock it**: flits
//!    entering a port strictly reduce its availability, so the freed-port
//!    log of [`StepScratch`] is a *complete* wake condition.
//!
//! Each travel therefore carries a [`TravelStatus`]; blocked travels are
//! parked on the wake-list of the port they wait for and skipped in `O(1)`
//! per step until a flit move frees that port. Wake-ups are processed
//! *immediately* after the sub-step that freed the port, which is what makes
//! the schedule move-for-move identical to the legacy sweep: a travel whose
//! gate opens mid-step is examined this step exactly when its turn in the
//! arbitration order is still to come — precisely the situations in which
//! the legacy sweep would have moved it.
//!
//! Because the performed moves are literally the same calls to
//! [`step_travel_with`] in the same order, the greedy-order semantics, the
//! one-entry/one-ejection-per-port bandwidth rule, and therefore proof
//! obligations (C-1)…(C-5) and Theorems 1–2 transfer unchanged. The status
//! transitions double as the wait-for events online deadlock detection
//! consumes: a `Blocked(p)` transition *is* a wait-for edge toward the owner
//! of `p` (see `genoc-detect`).

use crate::config::Config;
use crate::error::{Error, Result};
use crate::ids::{MsgId, PortId};
use crate::injection::InjectionMethod;
use crate::interpreter::{Outcome, RunOptions, RunResult};
use crate::network::Network;
use crate::step::{blocked_port_with, step_travel_with, travel_can_move_with, StepScratch};
use crate::switching::{KernelSpec, StepReport};
use crate::trace::Trace;
use crate::travel::{FlitPos, Travel};

/// Scheduling state of one travel, as maintained by the [`Kernel`].
///
/// The status lattice: `Pending → Active ⇄ Blocked(p)`, with `Delivered`
/// terminal. `Pending` travels (no flit has moved yet) and `Active` travels
/// are examined every step; `Blocked(p)` travels are parked on port `p`'s
/// wake-list and skipped until a flit move frees `p`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TravelStatus {
    /// Injected, but no flit has moved yet.
    Pending,
    /// Some flit has moved and the travel is (as far as the kernel knows)
    /// still runnable.
    Active,
    /// No flit can move until the given port is freed; parked on that
    /// port's wake-list.
    Blocked(PortId),
    /// Every flit has been delivered; the travel left the loop for good.
    Delivered,
}

/// One status change, recorded in step order. The kernel's per-step
/// transition log is the incremental feed for online deadlock detection: a
/// [`TravelStatus::Blocked`] transition is a wait-for edge (toward the owner
/// of the blocking port), an [`TravelStatus::Active`] or
/// [`TravelStatus::Delivered`] transition retracts it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Transition {
    /// The travel whose status changed.
    pub msg: MsgId,
    /// The status it changed to.
    pub status: TravelStatus,
}

/// The incremental stepper. See the module docs for the invariants.
///
/// The kernel borrows no configuration; callers pass the same `Config` to
/// every method. External mutations of that configuration (deadlock
/// recovery, re-injection — anything other than the kernel's own stepping
/// and [`Config::drain_arrived`]/[`Config::push_travel`] reported through
/// [`Kernel::note_arrivals`]/[`Kernel::sync_new_travels`]) invalidate the
/// parked-travel invariant and must be followed by [`Kernel::resync`].
#[derive(Debug)]
pub struct Kernel {
    spec: KernelSpec,
    port_count: usize,
    /// Status per *travel index* (slot), parallel to `cfg.travels()`.
    slot_status: Vec<TravelStatus>,
    /// Whether the slot is worth examining (`Pending`/`Active`), as a dense
    /// byte array: the sweep skips a parked travel on one sequential
    /// one-byte load, without touching travel structs or the 16-byte
    /// status entries.
    slot_runnable: Vec<bool>,
    /// Message id per slot, parallel to `slot_status`.
    slot_ids: Vec<MsgId>,
    /// Message-id index → current slot (`usize::MAX` once out of flight).
    pos_of: Vec<usize>,
    /// Parked travels per port index (identifiers stay valid across the
    /// slot compaction arrivals cause).
    wake: Vec<Vec<MsgId>>,
    scratch: StepScratch,
    transitions: Vec<Transition>,
    /// Ports freed during the most recent step, in occurrence order (a port
    /// may appear several times when successive sub-steps free it again).
    freed_log: Vec<PortId>,
    /// Switching steps performed so far (drives round-robin order).
    step_count: u64,
    /// Whether the last step delivered some travel completely, so the
    /// caller can skip [`Config::drain_arrived`]'s scan on the (frequent)
    /// steps that deliver nothing.
    saw_arrival: bool,
}

impl Kernel {
    /// Creates a kernel for `cfg` on `net` and classifies every travel.
    pub fn new(net: &dyn Network, cfg: &Config, spec: KernelSpec) -> Self {
        let port_count = net.port_count();
        let mut kernel = Kernel {
            spec,
            port_count,
            slot_status: Vec::new(),
            slot_runnable: Vec::new(),
            slot_ids: Vec::new(),
            pos_of: Vec::new(),
            wake: vec![Vec::new(); port_count],
            scratch: StepScratch::new(port_count),
            transitions: Vec::new(),
            freed_log: Vec::new(),
            step_count: spec.first_step,
            saw_arrival: false,
        };
        kernel.resync(cfg);
        kernel
    }

    /// Switching steps performed since construction.
    pub fn steps_taken(&self) -> u64 {
        self.step_count - self.spec.first_step
    }

    /// Current status of a travel (Delivered for identifiers no longer in
    /// flight).
    pub fn status_of(&self, id: MsgId) -> TravelStatus {
        match self.pos_of.get(id.index()) {
            Some(&slot) if slot != usize::MAX => self.slot_status[slot],
            _ => TravelStatus::Delivered,
        }
    }

    /// The status transitions of the most recent step, in occurrence order.
    /// A travel may appear several times (blocked, then woken); the last
    /// entry is its end-of-step status.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// The ports freed during the most recent step, in occurrence order.
    /// Together with [`Kernel::transitions`] this is the full wake-condition
    /// log observers need to reconstruct the step's scheduling decisions.
    pub fn freed_ports(&self) -> &[PortId] {
        &self.freed_log
    }

    fn ensure_id(&mut self, id: MsgId) {
        if id.index() >= self.pos_of.len() {
            self.pos_of.resize(id.index() + 1, usize::MAX);
        }
    }

    /// Reclassifies every travel from scratch. Call after any external
    /// mutation of the configuration (recovery aborts, reroutes, wholesale
    /// rebuilds); the transition log is cleared.
    pub fn resync(&mut self, cfg: &Config) {
        for list in &mut self.wake {
            list.clear();
        }
        self.slot_status.clear();
        self.slot_runnable.clear();
        self.slot_ids.clear();
        self.pos_of.iter_mut().for_each(|p| *p = usize::MAX);
        self.transitions.clear();
        for (i, t) in cfg.travels().iter().enumerate() {
            let id = t.id();
            self.ensure_id(id);
            self.pos_of[id.index()] = i;
            let status = if let Some(p) = blocked_port_with(cfg, i, self.spec.admission) {
                self.wake[p.index()].push(id);
                TravelStatus::Blocked(p)
            } else if t.occupies_network() || t.flit_positions().any(|f| f == FlitPos::Delivered) {
                TravelStatus::Active
            } else {
                TravelStatus::Pending
            };
            self.slot_runnable
                .push(!matches!(status, TravelStatus::Blocked(_)));
            self.slot_status.push(status);
            self.slot_ids.push(id);
        }
        // Defensive: a caller could resync a configuration holding
        // fully-delivered travels that were not drained yet.
        self.saw_arrival = cfg.travels().iter().any(Travel::is_arrived);
    }

    /// Registers travels appended to `cfg.travels()` since the last call
    /// (injection methods only ever append). Returns the total progress
    /// potential the newcomers added, so callers tracking the measure
    /// incrementally can account for it.
    pub fn sync_new_travels(&mut self, cfg: &Config) -> u64 {
        let mut added = 0u64;
        for i in self.slot_ids.len()..cfg.travels().len() {
            let t = cfg.travel(i);
            self.ensure_id(t.id());
            self.pos_of[t.id().index()] = i;
            self.slot_status.push(TravelStatus::Pending);
            self.slot_runnable.push(true);
            self.slot_ids.push(t.id());
            added += t.progress_potential();
        }
        added
    }

    /// Whether the most recent step delivered at least one travel
    /// completely, clearing the flag. When `false`,
    /// [`Config::drain_arrived`] would scan the travel list and find
    /// nothing — callers skip the call entirely.
    pub fn take_saw_arrival(&mut self) -> bool {
        std::mem::take(&mut self.saw_arrival)
    }

    /// Records that the travels in `newly` were drained from the in-flight
    /// list after a step, compacting the slot arrays to mirror the drained
    /// travel list. Appends their `Delivered` transitions to the current
    /// step's log.
    pub fn note_arrivals(&mut self, cfg: &Config, newly: &[MsgId]) {
        if newly.is_empty() {
            return;
        }
        for &id in newly {
            self.ensure_id(id);
            self.pos_of[id.index()] = usize::MAX;
            self.transitions.push(Transition {
                msg: id,
                status: TravelStatus::Delivered,
            });
        }
        // Stable compaction: surviving slots keep their relative order,
        // exactly like `Config::drain_arrived` keeps the travels'.
        let mut write = 0;
        for read in 0..self.slot_ids.len() {
            let id = self.slot_ids[read];
            if self.pos_of[id.index()] == usize::MAX {
                continue;
            }
            self.slot_ids[write] = id;
            self.slot_status[write] = self.slot_status[read];
            self.slot_runnable[write] = self.slot_runnable[read];
            self.pos_of[id.index()] = write;
            write += 1;
        }
        self.slot_ids.truncate(write);
        self.slot_status.truncate(write);
        self.slot_runnable.truncate(write);
        debug_assert_eq!(write, cfg.travels().len());
    }

    /// The deadlock predicate `Ω(σ)` under the kernel's admission rules:
    /// no in-flight travel can move. Parked travels are known-stuck (the
    /// wake-list invariant), so only `Pending`/`Active` travels are
    /// re-examined — in the near-deadlock endgame that set is tiny.
    pub fn is_deadlock(&self, cfg: &Config) -> bool {
        if cfg.is_evacuated() {
            return false;
        }
        self.slot_runnable
            .iter()
            .enumerate()
            .all(|(i, &runnable)| !runnable || !travel_can_move_with(cfg, i, self.spec.admission))
    }

    fn park(&mut self, slot: usize, p: PortId) {
        let id = self.slot_ids[slot];
        self.slot_status[slot] = TravelStatus::Blocked(p);
        self.slot_runnable[slot] = false;
        self.wake[p.index()].push(id);
        self.transitions.push(Transition {
            msg: id,
            status: TravelStatus::Blocked(p),
        });
    }

    /// One switching step: a greedy sweep in arbitration order over the
    /// non-parked travels, with immediate wake-up of travels whose gate
    /// port a move frees. Move-for-move identical to stepping the policy
    /// the kernel's [`KernelSpec`] came from.
    ///
    /// # Errors
    ///
    /// Propagates invariant violations from the movement primitives.
    pub fn step(&mut self, cfg: &mut Config, trace: &mut Trace) -> Result<StepReport> {
        self.transitions.clear();
        self.freed_log.clear();
        self.scratch.reset(self.port_count);
        let n = cfg.travels().len();
        debug_assert_eq!(n, self.slot_status.len());
        let start = self.spec.arbitration.start(n, self.step_count);
        self.step_count += 1;
        let mut total = StepReport::default();
        // The rotation split into two modulo-free ranges: a division per
        // skipped travel would dominate the sweep on large parked sets.
        for idx in (start..n).chain(0..start) {
            if !self.slot_runnable[idx] {
                continue;
            }
            let before = self.slot_status[idx];
            let r = step_travel_with(cfg, idx, &mut self.scratch, trace, self.spec.admission)?;
            if r.moves() > 0 {
                total.entries += r.entries;
                total.advances += r.advances;
                total.ejections += r.ejections;
                if before == TravelStatus::Pending {
                    self.slot_status[idx] = TravelStatus::Active;
                    self.transitions.push(Transition {
                        msg: self.slot_ids[idx],
                        status: TravelStatus::Active,
                    });
                }
                // Wake every travel parked on a port this sub-step freed —
                // before the sweep moves on, so a travel whose turn is still
                // to come is examined this very step (as the legacy sweep
                // would have).
                for fi in 0..self.scratch.freed().len() {
                    let p = self.scratch.freed()[fi];
                    self.freed_log.push(p);
                    while let Some(woken) = self.wake[p.index()].pop() {
                        let slot = self.pos_of[woken.index()];
                        self.slot_status[slot] = TravelStatus::Active;
                        self.slot_runnable[slot] = true;
                        self.transitions.push(Transition {
                            msg: woken,
                            status: TravelStatus::Active,
                        });
                    }
                }
                self.scratch.clear_freed();
                if r.ejections > 0 && cfg.travel(idx).is_arrived() {
                    self.saw_arrival = true;
                } else {
                    // Park immediately if the moves left the travel blocked
                    // (e.g. the worm just compacted against an owned port):
                    // it cannot move again before a wake, and the transition
                    // reaches detectors the same step the blocking event
                    // forms — matching the legacy detector's end-of-step
                    // diff.
                    if let Some(p) = blocked_port_with(cfg, idx, self.spec.admission) {
                        self.park(idx, p);
                    }
                }
            } else if let Some(p) = blocked_port_with(cfg, idx, self.spec.admission) {
                self.park(idx, p);
            }
        }
        Ok(total)
    }
}

/// Runs a configuration to termination on the [`Kernel`] — the incremental
/// equivalent of [`interpreter::run`](crate::interpreter::run), with
/// identical outcomes, step counts, traces, and arrival orders.
///
/// The (C-5) contracts are enforced incrementally: a step that moves nothing
/// on a non-deadlocked configuration is a [`Error::ProgressViolation`], and
/// since every flit move decreases the progress measure by exactly one, the
/// measure ledger is maintained by subtraction and audited against a full
/// recomputation at termination (and per step when
/// [`RunOptions::check_invariants`] is set) instead of being recomputed
/// every step.
///
/// # Errors
///
/// Propagates invariant violations, and — when
/// [`RunOptions::enforce_measure`] is set — reports contract violations as
/// the interpreter does.
pub fn run_kernelised(
    net: &dyn Network,
    injection: &dyn InjectionMethod,
    spec: KernelSpec,
    mut cfg: Config,
    options: &RunOptions,
) -> Result<RunResult> {
    let mut kernel = Kernel::new(net, &cfg, spec);
    let mut trace = Trace::new(options.record_trace);
    let mut measures = Vec::new();
    let mut arrival_order = Vec::new();
    let mut steps: u64 = 0;
    let mut ledger = cfg.progress_measure();

    let outcome = loop {
        injection.inject(net, &mut cfg)?;
        ledger += kernel.sync_new_travels(&cfg);
        if cfg.is_evacuated() {
            break Outcome::Evacuated;
        }
        if kernel.is_deadlock(&cfg) {
            break Outcome::Deadlock;
        }
        if steps >= options.max_steps {
            break Outcome::StepLimit;
        }

        trace.begin_step(steps);
        let report = kernel.step(&mut cfg, &mut trace)?;
        let newly = if kernel.take_saw_arrival() {
            cfg.drain_arrived()
        } else {
            Vec::new()
        };
        kernel.note_arrivals(&cfg, &newly);
        arrival_order.extend(newly);

        if options.enforce_measure && report.moves() == 0 {
            return Err(Error::ProgressViolation { step: steps });
        }
        ledger = ledger.saturating_sub(report.moves() as u64);
        if options.record_measures {
            measures.push((cfg.route_length_measure(), cfg.progress_measure()));
        }
        if options.check_invariants {
            cfg.validate(net)?;
            audit_ledger(&cfg, ledger, steps)?;
        }
        steps += 1;
    };

    if options.enforce_measure {
        audit_ledger(&cfg, ledger, steps)?;
    }
    Ok(RunResult {
        outcome,
        steps,
        config: cfg,
        trace,
        measures,
        arrival_order,
    })
}

fn audit_ledger(cfg: &Config, ledger: u64, step: u64) -> Result<()> {
    let actual = cfg.progress_measure();
    if actual != ledger {
        return Err(Error::Invariant(format!(
            "kernel measure ledger diverged at step {step}: tracked {ledger}, actual {actual} \
             — some move did not decrease the progress measure by exactly one"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::injection::IdentityInjection;
    use crate::interpreter::run;
    use crate::line::{LineNetwork, LineRouting, LineSwitching};
    use crate::spec::MessageSpec;
    use crate::step::AlwaysAdmit;
    use crate::switching::{Arbitration, SwitchingPolicy};

    static ADMIT: AlwaysAdmit = AlwaysAdmit;

    fn spec() -> KernelSpec {
        KernelSpec {
            arbitration: Arbitration::FixedPriority,
            admission: &ADMIT,
            first_step: 0,
        }
    }

    fn msg(s: usize, d: usize, flits: usize) -> MessageSpec {
        MessageSpec::new(NodeId::from_index(s), NodeId::from_index(d), flits)
    }

    fn line_cfg(nodes: usize, capacity: u32, specs: &[MessageSpec]) -> (LineNetwork, Config) {
        let net = LineNetwork::new(nodes, capacity);
        let routing = LineRouting::new(&net);
        let cfg = Config::from_specs(&net, &routing, specs).unwrap();
        (net, cfg)
    }

    #[test]
    fn kernel_run_matches_the_interpreter_exactly() {
        let workloads: Vec<Vec<MessageSpec>> = vec![
            vec![msg(0, 3, 3)],
            vec![msg(0, 3, 2), msg(3, 0, 2), msg(1, 2, 1)],
            (0..6).map(|_| msg(0, 3, 2)).collect(),
        ];
        for specs in workloads {
            let (net, cfg) = line_cfg(4, 1, &specs);
            let options = RunOptions {
                record_trace: true,
                check_invariants: true,
                ..RunOptions::default()
            };
            let legacy = run(
                &net,
                &IdentityInjection,
                &mut LineSwitching::default(),
                cfg.clone(),
                &options,
            )
            .unwrap();
            let kernel = run_kernelised(&net, &IdentityInjection, spec(), cfg, &options).unwrap();
            assert_eq!(kernel.outcome, legacy.outcome);
            assert_eq!(kernel.steps, legacy.steps);
            assert_eq!(kernel.arrival_order, legacy.arrival_order);
            assert_eq!(kernel.trace.events(), legacy.trace.events());
            assert_eq!(kernel.config, legacy.config);
        }
    }

    #[test]
    fn blocked_travels_park_and_wake() {
        // Two messages share node 0's local in-port; the second parks on it
        // while the first worm drains, then wakes and delivers.
        let (net, mut cfg) = line_cfg(4, 1, &[msg(0, 3, 2), msg(0, 1, 1)]);
        let mut kernel = Kernel::new(&net, &cfg, spec());
        let mut trace = Trace::new(false);
        let mut saw_blocked = false;
        let mut saw_wake = false;
        for step in 0..64 {
            if cfg.is_evacuated() {
                break;
            }
            assert!(!kernel.is_deadlock(&cfg), "line traffic cannot deadlock");
            trace.begin_step(step);
            kernel.step(&mut cfg, &mut trace).unwrap();
            let newly = cfg.drain_arrived();
            kernel.note_arrivals(&cfg, &newly);
            let one = MsgId::from_index(1);
            for t in kernel.transitions() {
                if t.msg == one {
                    match t.status {
                        TravelStatus::Blocked(_) => saw_blocked = true,
                        TravelStatus::Active if saw_blocked => saw_wake = true,
                        _ => {}
                    }
                }
            }
        }
        assert!(cfg.is_evacuated());
        assert!(saw_blocked, "message 1 must park behind message 0");
        assert!(saw_wake, "and wake when the in-port is freed");
        assert_eq!(
            kernel.status_of(MsgId::from_index(0)),
            TravelStatus::Delivered
        );
        assert_eq!(
            kernel.status_of(MsgId::from_index(1)),
            TravelStatus::Delivered
        );
    }

    #[test]
    fn round_robin_order_matches_legacy_starts() {
        let spec = KernelSpec {
            arbitration: Arbitration::RoundRobin,
            admission: &ADMIT,
            first_step: 0,
        };
        let (net, cfg) = line_cfg(4, 2, &[msg(0, 3, 2), msg(3, 0, 2), msg(1, 3, 1)]);
        let options = RunOptions {
            record_trace: true,
            ..RunOptions::default()
        };
        let kernel = run_kernelised(&net, &IdentityInjection, spec, cfg.clone(), &options).unwrap();
        // Reference: drive the legacy sweep in the same rotating order.
        struct RoundRobinLine {
            scratch: StepScratch,
            step: u64,
        }
        impl SwitchingPolicy for RoundRobinLine {
            fn name(&self) -> String {
                "rr-line".into()
            }
            fn step(
                &mut self,
                net: &dyn Network,
                cfg: &mut Config,
                trace: &mut Trace,
            ) -> Result<StepReport> {
                self.scratch.reset(net.port_count());
                let order = Arbitration::RoundRobin.order(cfg.travels().len(), self.step);
                self.step += 1;
                crate::step::step_all(cfg, &order, &mut self.scratch, trace)
            }
            fn is_deadlock(&self, _net: &dyn Network, cfg: &Config) -> bool {
                !cfg.is_evacuated() && !cfg.any_move_possible()
            }
        }
        let legacy = run(
            &net,
            &IdentityInjection,
            &mut RoundRobinLine {
                scratch: StepScratch::default(),
                step: 0,
            },
            cfg,
            &options,
        )
        .unwrap();
        assert_eq!(kernel.trace.events(), legacy.trace.events());
        assert_eq!(kernel.steps, legacy.steps);
    }

    #[test]
    fn deadlock_is_reported_like_the_interpreter() {
        // A line cannot deadlock under its routing, so hand-build the
        // mutual block: two mid-flight single-flit worms, each resident in
        // the capacity-1 port the other wants next.
        use crate::travel::Travel;
        let net = LineNetwork::new(2, 1);
        let a = net.fwd_out(0).unwrap();
        let b = net.bwd_out(1).unwrap();
        let travels = vec![
            Travel::mid_flight(&net, MsgId::from_index(0), vec![a, b], 1).unwrap(),
            Travel::mid_flight(&net, MsgId::from_index(1), vec![b, a], 1).unwrap(),
        ];
        let cfg = Config::from_travels(&net, travels).unwrap();
        let options = RunOptions::default();
        let legacy = run(
            &net,
            &IdentityInjection,
            &mut LineSwitching::default(),
            cfg.clone(),
            &options,
        )
        .unwrap();
        let kernel = run_kernelised(&net, &IdentityInjection, spec(), cfg, &options).unwrap();
        assert_eq!(legacy.outcome, Outcome::Deadlock);
        assert_eq!(kernel.outcome, Outcome::Deadlock);
        assert_eq!(kernel.steps, legacy.steps);
    }

    #[test]
    fn resync_reclassifies_after_external_mutation() {
        let (net, mut cfg) = line_cfg(3, 1, &[msg(0, 2, 2), msg(0, 1, 1)]);
        let mut kernel = Kernel::new(&net, &cfg, spec());
        let mut trace = Trace::new(false);
        // Park message 1 behind message 0.
        while !matches!(
            kernel.status_of(MsgId::from_index(1)),
            TravelStatus::Blocked(_)
        ) {
            kernel.step(&mut cfg, &mut trace).unwrap();
            let newly = cfg.drain_arrived();
            kernel.note_arrivals(&cfg, &newly);
        }
        // Externally abort message 0 (recovery-style) and resync.
        cfg.remove_travel(MsgId::from_index(0)).unwrap();
        kernel.resync(&cfg);
        assert!(
            !matches!(
                kernel.status_of(MsgId::from_index(1)),
                TravelStatus::Blocked(_)
            ),
            "the freed in-port unblocks message 1 on resync"
        );
        // The survivor drains.
        for step in 0..32 {
            if cfg.is_evacuated() {
                break;
            }
            trace.begin_step(step);
            kernel.step(&mut cfg, &mut trace).unwrap();
            let newly = cfg.drain_arrived();
            kernel.note_arrivals(&cfg, &newly);
        }
        assert!(cfg.is_evacuated());
    }
}
