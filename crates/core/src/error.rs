//! Error types for the GeNoC model.

use std::fmt;

use crate::ids::{MsgId, PortId};

/// Errors produced while constructing or executing a GeNoC specification.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The routing function produced no next hop for a pair of ports that was
    /// claimed reachable.
    NoRoute {
        /// Port the route computation was stuck at.
        from: PortId,
        /// Requested destination port.
        dest: PortId,
    },
    /// Route computation exceeded the hop limit without reaching the
    /// destination, which indicates a livelocked (non-terminating) routing
    /// function.
    RouteDiverged {
        /// Port the route computation started from.
        from: PortId,
        /// Requested destination port.
        dest: PortId,
        /// Hop limit that was exhausted.
        limit: usize,
    },
    /// A message specification was malformed (unknown node, zero flits, …).
    InvalidSpec(String),
    /// A configuration violated one of the structural invariants
    /// (buffer over-subscription, inconsistent ownership, …).
    Invariant(String),
    /// A port was asked to hold more flits than its capacity.
    CapacityExceeded {
        /// The over-subscribed port.
        port: PortId,
        /// Capacity of the port.
        capacity: u32,
    },
    /// The switching policy reported a non-deadlocked configuration but then
    /// failed to move any flit — a violation of proof obligation (C-5)'s
    /// premise that every non-deadlocked step makes progress.
    ProgressViolation {
        /// Step number at which the violation occurred.
        step: u64,
    },
    /// The termination measure failed to strictly decrease on a
    /// non-deadlocked step — a violation of proof obligation (C-5).
    MeasureViolation {
        /// Step number at which the violation occurred.
        step: u64,
        /// Measure before the step.
        before: u64,
        /// Measure after the step.
        after: u64,
    },
    /// A travel identifier was not found in the configuration.
    UnknownTravel(MsgId),
    /// A disk-spill I/O operation of the explorer failed (file create,
    /// read, or write under `--spill-dir`).
    Spill(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NoRoute { from, dest } => {
                write!(
                    f,
                    "routing function returned no next hop from {from} toward {dest}"
                )
            }
            Error::RouteDiverged { from, dest, limit } => write!(
                f,
                "route from {from} toward {dest} did not terminate within {limit} hops"
            ),
            Error::InvalidSpec(msg) => write!(f, "invalid message specification: {msg}"),
            Error::Invariant(msg) => write!(f, "configuration invariant violated: {msg}"),
            Error::CapacityExceeded { port, capacity } => {
                write!(f, "port {port} over-subscribed beyond capacity {capacity}")
            }
            Error::ProgressViolation { step } => write!(
                f,
                "switching step {step} moved no flit although the configuration was not a deadlock"
            ),
            Error::MeasureViolation {
                step,
                before,
                after,
            } => write!(
                f,
                "termination measure did not decrease on step {step} ({before} -> {after})"
            ),
            Error::UnknownTravel(id) => write!(f, "travel {id} not present in configuration"),
            Error::Spill(msg) => write!(f, "spill I/O failed: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_ports() {
        let e = Error::NoRoute {
            from: PortId::from_index(1),
            dest: PortId::from_index(2),
        };
        let msg = e.to_string();
        assert!(msg.contains("p1") && msg.contains("p2"), "{msg}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn measure_violation_shows_values() {
        let e = Error::MeasureViolation {
            step: 3,
            before: 10,
            after: 10,
        };
        assert!(e.to_string().contains("10 -> 10"));
    }
}
