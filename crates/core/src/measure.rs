//! Termination measures for the evacuation theorem.
//!
//! Proof obligation (C-5) requires a measure `μ` with
//! `σ.T ≠ ∅ ∧ ¬Ω(σ) ⟹ μ(S(R(σ))) < μ(σ)`: as long as messages remain and
//! there is no deadlock, every switching step strictly decreases the measure.
//! Termination of the GeNoC interpreter — and with it the evacuation theorem
//! — follows.

use crate::config::Config;

/// A termination measure over configurations.
pub trait TerminationMeasure {
    /// Human-readable name, e.g. `"mu_xy"`.
    fn name(&self) -> String;

    /// The measure value of a configuration.
    fn measure(&self, cfg: &Config) -> u64;
}

/// The paper's measure `μxy(σ) = Σ { |m.r| | m ∈ σ.T }`: the summed remaining
/// route lengths of all in-flight messages.
///
/// `μxy` decreases whenever some header flit advances, but is *constant*
/// during steps in which the only progress is a worm draining into its
/// destination. It is therefore weakly decreasing under wormhole switching;
/// the strictly decreasing measure the interpreter enforces is
/// [`ProgressMeasure`]. EXPERIMENTS.md discusses this subtlety.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RouteLengthMeasure;

impl TerminationMeasure for RouteLengthMeasure {
    fn name(&self) -> String {
        "mu_xy".into()
    }

    fn measure(&self, cfg: &Config) -> u64 {
        cfg.route_length_measure()
    }
}

/// The refined measure: the exact number of flit moves (entries, hops,
/// ejections) still required to deliver every in-flight message. Every flit
/// move decreases it by exactly one, so it is strictly decreasing on every
/// progressing step — discharging (C-5) for any routing function that
/// pre-computes terminating routes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProgressMeasure;

impl TerminationMeasure for ProgressMeasure {
    fn name(&self) -> String {
        "progress".into()
    }

    fn measure(&self, cfg: &Config) -> u64 {
        cfg.progress_measure()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::ids::NodeId;
    use crate::line::{LineNetwork, LineRouting};
    use crate::spec::MessageSpec;

    #[test]
    fn measures_agree_on_empty_configuration() {
        let net = LineNetwork::new(2, 1);
        let routing = LineRouting::new(&net);
        let cfg = Config::from_specs(&net, &routing, &[]).unwrap();
        assert_eq!(RouteLengthMeasure.measure(&cfg), 0);
        assert_eq!(ProgressMeasure.measure(&cfg), 0);
    }

    #[test]
    fn progress_measure_dominates_route_length() {
        let net = LineNetwork::new(4, 1);
        let routing = LineRouting::new(&net);
        let specs = [MessageSpec::new(
            NodeId::from_index(0),
            NodeId::from_index(3),
            3,
        )];
        let cfg = Config::from_specs(&net, &routing, &specs).unwrap();
        assert!(ProgressMeasure.measure(&cfg) > RouteLengthMeasure.measure(&cfg));
    }
}
