//! # genoc-core
//!
//! An executable, generic model of networks-on-chips after the GeNoC
//! methodology, reproducing *"Formal Specification of Networks-on-Chips:
//! Deadlock and Evacuation"* (Verbeek & Schmaltz, DATE 2010).
//!
//! GeNoC specifies a network by three *constituents*:
//!
//! * an [injection method](injection::InjectionMethod) `I`,
//! * a [routing function](routing::RoutingFunction) `R` defined between
//!   *ports*, and
//! * a [switching policy](switching::SwitchingPolicy) `S`,
//!
//! and characterises them by proof obligations
//! ([(C-1)…(C-5)](obligations::ObligationId)) from which three global
//! theorems follow: functional correctness (`CorrThm`), deadlock-freedom
//! (`DeadThm`), and evacuation/liveness (`EvacThm`).
//!
//! This crate provides the generic machinery: configurations
//! `σ = ⟨T, ST, A⟩` ([`config::Config`]), the [interpreter](interpreter::run)
//! with its deadlock predicate `Ω` and run-time (C-5) enforcement,
//! [termination measures](measure), movement [traces](trace), and the
//! executable [theorem statements](theorems). Concrete topologies, routing
//! functions, switching policies, dependency-graph analyses, and the
//! obligation-discharge engine live in the sibling crates
//! `genoc-topology`, `genoc-routing`, `genoc-switching`, `genoc-depgraph`,
//! and `genoc-verif`.
//!
//! ## Quick example
//!
//! Run a two-message workload across the built-in [`line`](mod@line) reference
//! network and check the evacuation theorem:
//!
//! ```
//! use genoc_core::config::Config;
//! use genoc_core::injection::IdentityInjection;
//! use genoc_core::interpreter::{run, RunOptions};
//! use genoc_core::line::{LineNetwork, LineRouting, LineSwitching};
//! use genoc_core::spec::MessageSpec;
//! use genoc_core::theorems::check_evacuation;
//! use genoc_core::{MsgId, NodeId};
//!
//! # fn main() -> Result<(), genoc_core::Error> {
//! let net = LineNetwork::new(4, 1);
//! let routing = LineRouting::new(&net);
//! let specs = [
//!     MessageSpec::new(NodeId::from_index(0), NodeId::from_index(3), 3),
//!     MessageSpec::new(NodeId::from_index(3), NodeId::from_index(0), 3),
//! ];
//! let cfg = Config::from_specs(&net, &routing, &specs)?;
//! let injected: Vec<MsgId> = cfg.travels().iter().map(|t| t.id()).collect();
//! let result = run(&net, &IdentityInjection, &mut LineSwitching::default(), cfg,
//!                  &RunOptions::default())?;
//! assert!(check_evacuation(&injected, &result).holds);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod blocking;
pub mod config;
pub mod error;
pub mod ids;
pub mod injection;
pub mod interpreter;
pub mod kernel;
pub mod line;
pub mod measure;
pub mod meta;
pub mod moves;
pub mod network;
pub mod obligations;
#[cfg(test)]
mod proptests;
pub mod routing;
pub mod spec;
pub mod state;
pub mod step;
pub mod switching;
pub mod theorems;
pub mod trace;
pub mod travel;

pub use crate::error::{Error, Result};
pub use crate::ids::{MsgId, NodeId, PortId};

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::arena::{run_arena, ArenaConfig, ArenaKernel, ArenaSpec, MoveRec};
    pub use crate::blocking::{block_events, find_wait_cycle, BlockEvent, WaitCycle};
    pub use crate::config::Config;
    pub use crate::error::{Error, Result};
    pub use crate::ids::{MsgId, NodeId, PortId};
    pub use crate::injection::{IdentityInjection, InjectionMethod};
    pub use crate::interpreter::{run, Outcome, RunOptions, RunResult};
    pub use crate::kernel::{run_kernelised, Kernel, Transition, TravelStatus};
    pub use crate::measure::{ProgressMeasure, RouteLengthMeasure, TerminationMeasure};
    pub use crate::meta::{InstanceMeta, RoutingKind, SwitchingKind, TopologyKind};
    pub use crate::moves::{Move, MoveEnumerator, MoveKind};
    pub use crate::network::{Direction, Network, PortAttrs};
    pub use crate::obligations::{ObligationId, ObligationReport};
    pub use crate::routing::{compute_route, RoutingFunction};
    pub use crate::spec::MessageSpec;
    pub use crate::switching::{Arbitration, KernelSpec, StepReport, SwitchingPolicy};
    pub use crate::theorems::{check_correctness, check_evacuation};
    pub use crate::travel::{FlitPos, Travel};
}
