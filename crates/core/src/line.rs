//! A minimal reference instance: a bidirectional line of nodes.
//!
//! The line network is the smallest interesting [`Network`]: every node has
//! local in/out ports plus forward/backward link ports toward its neighbors,
//! and shortest-path routing is trivially deadlock-free. It exists so that
//! `genoc-core` can test and document itself without depending on the
//! topology crates; realistic instances (HERMES mesh, torus, ring,
//! Spidergon) live in `genoc-topology`.

use crate::config::Config;
use crate::error::Result;
use crate::ids::{NodeId, PortId};
use crate::network::{Direction, Network, PortAttrs};
use crate::routing::RoutingFunction;
use crate::step::{step_all, AlwaysAdmit, StepScratch};
use crate::switching::{Arbitration, KernelSpec, StepReport, SwitchingPolicy};
use crate::trace::Trace;

/// Port names of the line network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum LinePortName {
    Local,
    /// Link toward the higher-indexed neighbor.
    Fwd,
    /// Link toward the lower-indexed neighbor.
    Bwd,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct LinePort {
    node: usize,
    name: LinePortName,
    dir: Direction,
}

/// A bidirectional line of `n` nodes with uniform buffer capacity.
///
/// # Examples
///
/// ```
/// use genoc_core::line::LineNetwork;
/// use genoc_core::network::Network;
///
/// let net = LineNetwork::new(4, 2);
/// assert_eq!(net.node_count(), 4);
/// assert_eq!(net.topology_name(), "line-4");
/// ```
#[derive(Clone, Debug)]
pub struct LineNetwork {
    nodes: usize,
    capacity: u32,
    ports: Vec<LinePort>,
    /// `port_index[node]` maps (name, dir) pairs to dense port ids.
    local_in: Vec<PortId>,
    local_out: Vec<PortId>,
    fwd_in: Vec<Option<PortId>>,
    fwd_out: Vec<Option<PortId>>,
    bwd_in: Vec<Option<PortId>>,
    bwd_out: Vec<Option<PortId>>,
}

impl LineNetwork {
    /// Builds a line of `nodes` nodes (at least 1) with `capacity` one-flit
    /// buffers on every port.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `capacity == 0`.
    pub fn new(nodes: usize, capacity: u32) -> Self {
        assert!(nodes > 0, "line network needs at least one node");
        assert!(capacity > 0, "ports need at least one buffer");
        let mut net = LineNetwork {
            nodes,
            capacity,
            ports: Vec::new(),
            local_in: Vec::with_capacity(nodes),
            local_out: Vec::with_capacity(nodes),
            fwd_in: vec![None; nodes],
            fwd_out: vec![None; nodes],
            bwd_in: vec![None; nodes],
            bwd_out: vec![None; nodes],
        };
        for node in 0..nodes {
            let li = net.push(node, LinePortName::Local, Direction::In);
            let lo = net.push(node, LinePortName::Local, Direction::Out);
            net.local_in.push(li);
            net.local_out.push(lo);
            if node + 1 < nodes {
                net.fwd_out[node] = Some(net.push(node, LinePortName::Fwd, Direction::Out));
                net.bwd_in[node] = Some(net.push(node, LinePortName::Bwd, Direction::In));
            }
            if node > 0 {
                net.fwd_in[node] = Some(net.push(node, LinePortName::Fwd, Direction::In));
                net.bwd_out[node] = Some(net.push(node, LinePortName::Bwd, Direction::Out));
            }
        }
        net
    }

    fn push(&mut self, node: usize, name: LinePortName, dir: Direction) -> PortId {
        let id = PortId::from_index(self.ports.len());
        self.ports.push(LinePort { node, name, dir });
        id
    }

    fn port(&self, p: PortId) -> LinePort {
        self.ports[p.index()]
    }

    /// The forward out-port of `node`, if it has a higher neighbor.
    pub fn fwd_out(&self, node: usize) -> Option<PortId> {
        self.fwd_out[node]
    }

    /// The backward out-port of `node`, if it has a lower neighbor.
    pub fn bwd_out(&self, node: usize) -> Option<PortId> {
        self.bwd_out[node]
    }
}

impl Network for LineNetwork {
    fn port_count(&self) -> usize {
        self.ports.len()
    }

    fn node_count(&self) -> usize {
        self.nodes
    }

    fn attrs(&self, p: PortId) -> PortAttrs {
        let port = self.port(p);
        PortAttrs {
            node: NodeId::from_index(port.node),
            direction: port.dir,
            local: port.name == LinePortName::Local,
            capacity: self.capacity,
        }
    }

    fn next_in(&self, p: PortId) -> Option<PortId> {
        let port = self.port(p);
        if port.dir != Direction::Out {
            return None;
        }
        match port.name {
            LinePortName::Local => None,
            LinePortName::Fwd => self.fwd_in[port.node + 1],
            LinePortName::Bwd => self.bwd_in[port.node - 1],
        }
    }

    fn local_in(&self, n: NodeId) -> PortId {
        self.local_in[n.index()]
    }

    fn local_out(&self, n: NodeId) -> PortId {
        self.local_out[n.index()]
    }

    fn port_label(&self, p: PortId) -> String {
        let port = self.port(p);
        let name = match port.name {
            LinePortName::Local => "L",
            LinePortName::Fwd => "F",
            LinePortName::Bwd => "B",
        };
        let dir = match port.dir {
            Direction::In => "in",
            Direction::Out => "out",
        };
        format!("({}) {} {}", port.node, name, dir)
    }

    fn topology_name(&self) -> String {
        format!("line-{}", self.nodes)
    }
}

/// Shortest-path routing on the line: forward if the destination node is
/// higher, backward if lower, local otherwise.
#[derive(Clone, Debug)]
pub struct LineRouting {
    net: LineNetwork,
}

impl LineRouting {
    /// Builds the routing function for a line instance.
    pub fn new(net: &LineNetwork) -> Self {
        LineRouting { net: net.clone() }
    }
}

impl RoutingFunction for LineRouting {
    fn name(&self) -> String {
        "line-shortest".into()
    }

    fn next_hops(&self, from: PortId, dest: PortId, out: &mut Vec<PortId>) {
        if from == dest {
            return;
        }
        let p = self.net.port(from);
        if p.dir == Direction::Out {
            if let Some(next) = self.net.next_in(from) {
                out.push(next);
            }
            return;
        }
        let here = p.node;
        let target = self.net.port(dest).node;
        let hop = if target > here {
            self.net.fwd_out[here]
        } else if target < here {
            self.net.bwd_out[here]
        } else {
            Some(self.net.local_out[here])
        };
        if let Some(hop) = hop {
            out.push(hop);
        }
    }
}

/// The reference wormhole switching policy for the line (fixed-priority
/// greedy step); `genoc-switching` provides the configurable policies used
/// by the experiments.
#[derive(Clone, Debug, Default)]
pub struct LineSwitching {
    scratch: StepScratch,
}

impl SwitchingPolicy for LineSwitching {
    fn name(&self) -> String {
        "line-wormhole".into()
    }

    fn step(
        &mut self,
        net: &dyn Network,
        cfg: &mut Config,
        trace: &mut Trace,
    ) -> Result<StepReport> {
        self.scratch.reset(net.port_count());
        let order: Vec<usize> = (0..cfg.travels().len()).collect();
        step_all(cfg, &order, &mut self.scratch, trace)
    }

    fn is_deadlock(&self, _net: &dyn Network, cfg: &Config) -> bool {
        !cfg.is_evacuated() && !cfg.any_move_possible()
    }

    fn kernel_spec(&self) -> Option<KernelSpec> {
        static ADMISSION: AlwaysAdmit = AlwaysAdmit;
        Some(KernelSpec {
            arbitration: Arbitration::FixedPriority,
            admission: &ADMISSION,
            first_step: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_line_has_only_local_ports() {
        let net = LineNetwork::new(1, 1);
        assert_eq!(net.port_count(), 2);
        let n = NodeId::from_index(0);
        assert!(net.attrs(net.local_in(n)).is_local_in());
        assert!(net.attrs(net.local_out(n)).is_local_out());
    }

    #[test]
    fn links_are_wired_symmetrically() {
        let net = LineNetwork::new(3, 1);
        for node in 0..2 {
            let out = net.fwd_out(node).unwrap();
            let next = net.next_in(out).unwrap();
            let attrs = net.attrs(next);
            assert_eq!(attrs.node.index(), node + 1);
            assert_eq!(attrs.direction, Direction::In);
        }
        let back = net.bwd_out(2).unwrap();
        let next = net.next_in(back).unwrap();
        assert_eq!(net.attrs(next).node.index(), 1);
    }

    #[test]
    fn in_ports_have_no_next_in() {
        let net = LineNetwork::new(2, 1);
        for p in net.ports() {
            if net.attrs(p).direction == Direction::In {
                assert_eq!(net.next_in(p), None);
            }
        }
    }

    #[test]
    fn local_out_is_a_sink() {
        let net = LineNetwork::new(2, 1);
        let lo = net.local_out(NodeId::from_index(0));
        assert_eq!(net.next_in(lo), None);
    }

    #[test]
    fn routing_is_deterministic_and_minimal() {
        let net = LineNetwork::new(5, 1);
        let routing = LineRouting::new(&net);
        assert!(routing.is_deterministic());
        let src = net.local_in(NodeId::from_index(1));
        let dst = net.local_out(NodeId::from_index(4));
        let route = crate::routing::compute_route(&net, &routing, src, dst).unwrap();
        assert_eq!(route.len(), 2 + 2 * 3);
    }

    #[test]
    fn port_labels_are_informative() {
        let net = LineNetwork::new(2, 1);
        let label = net.port_label(net.local_in(NodeId::from_index(1)));
        assert!(label.contains('1') && label.contains('L'), "{label}");
    }
}
