//! The [`RoutingFunction`] abstraction and route computation.
//!
//! The paper defines routing at the level of ports: `R : P × P → P` maps the
//! current port and the destination port to the next hop. Deterministic
//! functions return exactly one hop; adaptive functions (used here only for
//! dependency-graph analysis, as in the paper's future-work section) may
//! return several.

use crate::error::{Error, Result};
use crate::ids::PortId;
use crate::network::Network;

/// A port-level routing function `R : P × P → P(P)`.
///
/// Implementations own whatever instance data they need (dimensions, port
/// tables); consistency with the [`Network`] they were built from is the
/// constructor's responsibility.
///
/// # Examples
///
/// ```
/// use genoc_core::line::{LineNetwork, LineRouting};
/// use genoc_core::network::Network;
/// use genoc_core::routing::RoutingFunction;
/// use genoc_core::NodeId;
///
/// let net = LineNetwork::new(3, 1);
/// let routing = LineRouting::new(&net);
/// let src = net.local_in(NodeId::from_index(0));
/// let dst = net.local_out(NodeId::from_index(2));
/// let hop = routing.next_hop(src, dst).expect("line is connected");
/// assert_ne!(hop, src);
/// ```
pub trait RoutingFunction {
    /// Human-readable name, e.g. `"xy"`.
    fn name(&self) -> String;

    /// Appends to `out` every admissible next hop from `from` toward `dest`.
    ///
    /// `out` is not cleared, so callers can accumulate. If `from == dest`
    /// the message has arrived and no hop is produced.
    fn next_hops(&self, from: PortId, dest: PortId, out: &mut Vec<PortId>);

    /// Whether the function returns at most one next hop for every pair.
    ///
    /// The deadlock theorem of the paper (Theorem 1) is stated for
    /// deterministic routing; the acyclicity check remains *sufficient* for
    /// adaptive functions but is no longer necessary.
    fn is_deterministic(&self) -> bool {
        true
    }

    /// The first admissible next hop, if any.
    fn next_hop(&self, from: PortId, dest: PortId) -> Option<PortId> {
        let mut out = Vec::with_capacity(1);
        self.next_hops(from, dest, &mut out);
        out.first().copied()
    }
}

/// Computes the full port path from `source` to `dest` by iterating a
/// deterministic routing function, the pre-computation of routes used by the
/// paper's `GeNoC2D` (deterministic routing makes routes
/// configuration-independent).
///
/// The returned path includes both endpoints: `path[0] == source` and
/// `path.last() == dest`.
///
/// # Errors
///
/// * [`Error::NoRoute`] if the routing function returns no hop before the
///   destination is reached;
/// * [`Error::RouteDiverged`] if the path exceeds `4 * port_count` hops,
///   which indicates a non-terminating routing function.
///
/// # Examples
///
/// ```
/// use genoc_core::line::{LineNetwork, LineRouting};
/// use genoc_core::network::Network;
/// use genoc_core::routing::compute_route;
/// use genoc_core::NodeId;
///
/// # fn main() -> Result<(), genoc_core::Error> {
/// let net = LineNetwork::new(3, 1);
/// let routing = LineRouting::new(&net);
/// let src = net.local_in(NodeId::from_index(0));
/// let dst = net.local_out(NodeId::from_index(2));
/// let route = compute_route(&net, &routing, src, dst)?;
/// assert_eq!(route[0], src);
/// assert_eq!(*route.last().unwrap(), dst);
/// # Ok(())
/// # }
/// ```
pub fn compute_route(
    net: &dyn Network,
    routing: &dyn RoutingFunction,
    source: PortId,
    dest: PortId,
) -> Result<Vec<PortId>> {
    let limit = 4 * net.port_count().max(4);
    let mut path = Vec::with_capacity(8);
    path.push(source);
    let mut current = source;
    while current != dest {
        if path.len() > limit {
            return Err(Error::RouteDiverged {
                from: source,
                dest,
                limit,
            });
        }
        let next = routing.next_hop(current, dest).ok_or(Error::NoRoute {
            from: current,
            dest,
        })?;
        path.push(next);
        current = next;
    }
    Ok(path)
}

/// Validates that `path` is a plausible route on `net` under `routing`:
/// consecutive, terminating at `path.last()`, and reproducible hop by hop.
///
/// Used by the executable correctness theorem to check that arrived messages
/// "followed a valid path".
pub fn is_valid_route(_net: &dyn Network, routing: &dyn RoutingFunction, path: &[PortId]) -> bool {
    if path.is_empty() {
        return false;
    }
    let dest = *path.last().expect("non-empty");
    let mut hops = Vec::with_capacity(2);
    for window in path.windows(2) {
        hops.clear();
        routing.next_hops(window[0], dest, &mut hops);
        if !hops.contains(&window[1]) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::line::{LineNetwork, LineRouting};

    fn fixture() -> (LineNetwork, LineRouting) {
        let net = LineNetwork::new(4, 1);
        let routing = LineRouting::new(&net);
        (net, routing)
    }

    #[test]
    fn route_reaches_every_destination() {
        let (net, routing) = fixture();
        for s in net.nodes() {
            for d in net.nodes() {
                let src = net.local_in(s);
                let dst = net.local_out(d);
                let route = compute_route(&net, &routing, src, dst).expect("line connected");
                assert_eq!(route[0], src);
                assert_eq!(*route.last().unwrap(), dst);
                // Hop count: in + (out,in) per intermediate link + out.
                let hops = s.index().abs_diff(d.index());
                assert_eq!(route.len(), 2 + 2 * hops);
            }
        }
    }

    #[test]
    fn route_to_same_node_is_two_ports() {
        let (net, routing) = fixture();
        let n = NodeId::from_index(1);
        let route =
            compute_route(&net, &routing, net.local_in(n), net.local_out(n)).expect("trivial");
        assert_eq!(route.len(), 2);
    }

    #[test]
    fn computed_routes_validate() {
        let (net, routing) = fixture();
        let src = net.local_in(NodeId::from_index(0));
        let dst = net.local_out(NodeId::from_index(3));
        let route = compute_route(&net, &routing, src, dst).unwrap();
        assert!(is_valid_route(&net, &routing, &route));
    }

    #[test]
    fn tampered_route_fails_validation() {
        let (net, routing) = fixture();
        let src = net.local_in(NodeId::from_index(0));
        let dst = net.local_out(NodeId::from_index(3));
        let mut route = compute_route(&net, &routing, src, dst).unwrap();
        route.swap(1, 2);
        assert!(!is_valid_route(&net, &routing, &route));
    }

    #[test]
    fn empty_route_is_invalid() {
        let (net, routing) = fixture();
        assert!(!is_valid_route(&net, &routing, &[]));
    }

    struct StuckRouting;
    impl RoutingFunction for StuckRouting {
        fn name(&self) -> String {
            "stuck".into()
        }
        fn next_hops(&self, _from: PortId, _dest: PortId, _out: &mut Vec<PortId>) {}
    }

    #[test]
    fn stuck_routing_reports_no_route() {
        let (net, _) = fixture();
        let src = net.local_in(NodeId::from_index(0));
        let dst = net.local_out(NodeId::from_index(3));
        let err = compute_route(&net, &StuckRouting, src, dst).unwrap_err();
        assert!(matches!(err, Error::NoRoute { .. }));
    }

    struct LoopRouting(PortId);
    impl RoutingFunction for LoopRouting {
        fn name(&self) -> String {
            "loop".into()
        }
        fn next_hops(&self, _from: PortId, _dest: PortId, out: &mut Vec<PortId>) {
            out.push(self.0);
        }
    }

    #[test]
    fn livelocked_routing_reports_divergence() {
        let (net, _) = fixture();
        let src = net.local_in(NodeId::from_index(0));
        let dst = net.local_out(NodeId::from_index(3));
        let err = compute_route(&net, &LoopRouting(src), src, dst).unwrap_err();
        assert!(matches!(err, Error::RouteDiverged { .. }));
    }
}
