//! Configurations `σ = ⟨T, ST, A⟩` and the flit-movement primitives shared by
//! all switching policies.
//!
//! A configuration bundles the in-flight travel list `T`, the network state
//! `ST`, and the arrived list `A`. The movement primitives (`enter_flit`,
//! `advance_flit`, `eject_flit`) keep `T` and `ST` consistent; switching
//! policies differ only in *which* admissible moves they perform per step.

use crate::error::{Error, Result};
use crate::ids::{MsgId, PortId};
use crate::network::Network;
use crate::routing::RoutingFunction;
use crate::spec::MessageSpec;
use crate::state::NetworkState;
use crate::travel::{FlitPos, Travel};

/// A network configuration `σ = ⟨T, ST, A⟩`.
///
/// # Examples
///
/// ```
/// use genoc_core::line::{LineNetwork, LineRouting};
/// use genoc_core::spec::MessageSpec;
/// use genoc_core::config::Config;
/// use genoc_core::NodeId;
///
/// # fn main() -> Result<(), genoc_core::Error> {
/// let net = LineNetwork::new(3, 1);
/// let routing = LineRouting::new(&net);
/// let specs = [MessageSpec::new(NodeId::from_index(0), NodeId::from_index(2), 2)];
/// let cfg = Config::from_specs(&net, &routing, &specs)?;
/// assert_eq!(cfg.travels().len(), 1);
/// assert!(cfg.arrived().is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Config {
    travels: Vec<Travel>,
    state: NetworkState,
    arrived: Vec<Travel>,
}

impl Config {
    /// Builds the initial configuration for a workload: every message of
    /// `specs` becomes a travel with a pre-computed route and all flits
    /// pending at the source IP core (all messages are present at time 0, so
    /// the identity injection method satisfies (C-4)).
    ///
    /// # Errors
    ///
    /// Propagates specification and route-computation errors.
    pub fn from_specs(
        net: &dyn Network,
        routing: &dyn RoutingFunction,
        specs: &[MessageSpec],
    ) -> Result<Self> {
        let travels = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| Travel::from_spec(net, routing, MsgId::from_index(i), spec))
            .collect::<Result<Vec<_>>>()?;
        Ok(Config {
            travels,
            state: NetworkState::for_network(net),
            arrived: Vec::new(),
        })
    }

    /// Builds a configuration from explicit (possibly mid-flight) travels,
    /// reconstructing buffer occupancy and ownership from the flit positions.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invariant`] or [`Error::CapacityExceeded`] if two
    /// travels claim the same port or a port is over-subscribed, and
    /// propagates worm-shape violations.
    pub fn from_travels(net: &dyn Network, travels: Vec<Travel>) -> Result<Self> {
        let mut state = NetworkState::for_network(net);
        for t in &travels {
            t.check_invariants()?;
            for pos in t.flit_positions() {
                if let FlitPos::InNetwork(k) = pos {
                    state.enter(t.route()[k], t.id())?;
                }
            }
            if let Some((lo, hi)) = t.owned_route_range() {
                for k in lo..=hi {
                    state.claim(t.route()[k], t.id())?;
                }
            }
        }
        let (arrived, travels) = travels.into_iter().partition(|t| t.is_arrived());
        Ok(Config {
            travels,
            state,
            arrived,
        })
    }

    /// The in-flight travel list `T`.
    pub fn travels(&self) -> &[Travel] {
        &self.travels
    }

    /// Appends a travel to `T`, registering any in-network flits and owned
    /// ports with the network state. Used by non-identity injection methods
    /// (the paper's future-work extension) to release messages into the
    /// configuration after time 0.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invariant`] if the travel violates the worm-shape
    /// invariant or conflicts with resident packets.
    pub fn push_travel(&mut self, travel: Travel) -> Result<()> {
        travel.check_invariants()?;
        if self
            .travels
            .iter()
            .chain(self.arrived.iter())
            .any(|t| t.id() == travel.id())
        {
            return Err(Error::Invariant(format!(
                "travel {} already present in configuration",
                travel.id()
            )));
        }
        for pos in travel.flit_positions() {
            if let FlitPos::InNetwork(k) = pos {
                self.state.enter(travel.route()[k], travel.id())?;
            }
        }
        if let Some((lo, hi)) = travel.owned_route_range() {
            for k in lo..=hi {
                self.state.claim(travel.route()[k], travel.id())?;
            }
        }
        self.travels.push(travel);
        Ok(())
    }

    /// Removes an in-flight travel from `T`, returning its flits' buffers and
    /// its owned ports to the network. The aborted message is simply gone —
    /// the recovery analogue of dropping a packet.
    ///
    /// This is the primitive behind abort-based deadlock recovery: evicting
    /// one member of a wait-for cycle frees the port its predecessor is
    /// blocked on, and the remaining messages drain (Theorem 2 applies to the
    /// survivor configuration).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownTravel`] if `id` is not in flight, and
    /// propagates state bookkeeping violations (which indicate a bug).
    pub fn remove_travel(&mut self, id: MsgId) -> Result<Travel> {
        let i = self
            .travels
            .iter()
            .position(|t| t.id() == id)
            .ok_or(Error::UnknownTravel(id))?;
        let t = self.travels.remove(i);
        for pos in t.flit_positions() {
            if let FlitPos::InNetwork(j) = pos {
                self.state.leave(t.route()[j], id, false)?;
            }
        }
        if let Some((lo, hi)) = t.owned_route_range() {
            for j in lo..=hi {
                self.state.release(t.route()[j], id)?;
            }
        }
        Ok(t)
    }

    /// Reroutes an in-flight travel onto a new route that preserves its
    /// claimed prefix (see [`Travel::reroute`]). Ownership never extends
    /// beyond the head, so the network state is unaffected.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownTravel`] if `id` is not in flight and
    /// propagates [`Travel::reroute`] validation failures (in which case the
    /// configuration is unchanged).
    pub fn reroute_travel(
        &mut self,
        net: &dyn Network,
        id: MsgId,
        new_route: Vec<PortId>,
    ) -> Result<()> {
        let i = self
            .travels
            .iter()
            .position(|t| t.id() == id)
            .ok_or(Error::UnknownTravel(id))?;
        self.travels[i].reroute(net, new_route)
    }

    /// The arrived travel list `A`.
    pub fn arrived(&self) -> &[Travel] {
        &self.arrived
    }

    /// Total flits delivered into destination IP cores: the flits of every
    /// arrived travel. The single definition behind every throughput figure
    /// (campaign reports, Theorem 2 reports).
    pub fn delivered_flits(&self) -> u64 {
        self.arrived.iter().map(|t| t.flit_count() as u64).sum()
    }

    /// The network state `ST`.
    pub fn state(&self) -> &NetworkState {
        &self.state
    }

    /// Travel at index `i` of `T`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn travel(&self, i: usize) -> &Travel {
        &self.travels[i]
    }

    /// Finds an in-flight travel by identifier.
    pub fn travel_by_id(&self, id: MsgId) -> Option<&Travel> {
        self.travels.iter().find(|t| t.id() == id)
    }

    /// Whether every message has arrived (`T = ∅`), the first termination
    /// case of the `GeNoC` function.
    pub fn is_evacuated(&self) -> bool {
        self.travels.is_empty()
    }

    // ------------------------------------------------------------------
    // Movement primitives
    // ------------------------------------------------------------------

    /// Whether flit `flit` of travel `i` may enter the network at `route[0]`
    /// under wormhole admission rules.
    pub fn can_enter_flit(&self, i: usize, flit: usize) -> bool {
        let t = &self.travels[i];
        if t.flit_pos(flit) != FlitPos::Pending {
            return false;
        }
        // A non-head flit may only enter once its predecessor has.
        if flit > 0 && t.flit_pos(flit - 1) == FlitPos::Pending {
            return false;
        }
        self.state.can_enter(t.route()[0], t.id(), flit == 0)
    }

    /// Moves flit `flit` of travel `i` from the source IP core into
    /// `route[0]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invariant`] if the move is not admissible.
    pub fn enter_flit(&mut self, i: usize, flit: usize) -> Result<()> {
        if !self.can_enter_flit(i, flit) {
            return Err(Error::Invariant(format!(
                "inadmissible entry of flit {flit} of travel index {i}"
            )));
        }
        let (port, id) = {
            let t = &self.travels[i];
            (t.route()[0], t.id())
        };
        self.state.enter(port, id)?;
        self.travels[i].set_flit_pos(flit, FlitPos::InNetwork(0));
        Ok(())
    }

    /// Whether flit `flit` of travel `i` may advance one hop along its route
    /// under wormhole admission rules: the target port has a free buffer, the
    /// ownership rules admit the flit, and the flit does not pass its
    /// predecessor.
    pub fn can_advance_flit(&self, i: usize, flit: usize) -> bool {
        let t = &self.travels[i];
        let k = match t.flit_pos(flit) {
            FlitPos::InNetwork(k) => k,
            _ => return false,
        };
        if k + 1 >= t.route().len() {
            return false; // at the destination port; the only move left is ejection
        }
        if flit > 0 {
            match t.flit_pos(flit - 1) {
                FlitPos::Delivered => {}
                FlitPos::InNetwork(pk) if pk > k => {}
                _ => return false,
            }
        }
        self.state.can_enter(t.route()[k + 1], t.id(), flit == 0)
    }

    /// Advances flit `flit` of travel `i` one hop along its route.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invariant`] if the move is not admissible.
    pub fn advance_flit(&mut self, i: usize, flit: usize) -> Result<()> {
        if !self.can_advance_flit(i, flit) {
            return Err(Error::Invariant(format!(
                "inadmissible advance of flit {flit} of travel index {i}"
            )));
        }
        let (from, to, id, is_tail) = {
            let t = &self.travels[i];
            let k = match t.flit_pos(flit) {
                FlitPos::InNetwork(k) => k,
                _ => unreachable!("checked by can_advance_flit"),
            };
            (t.route()[k], t.route()[k + 1], t.id(), t.is_tail(flit))
        };
        self.state.enter(to, id)?;
        self.state.leave(from, id, is_tail)?;
        let t = &mut self.travels[i];
        let k = match t.flit_pos(flit) {
            FlitPos::InNetwork(k) => k,
            _ => unreachable!(),
        };
        t.set_flit_pos(flit, FlitPos::InNetwork(k + 1));
        Ok(())
    }

    /// Whether flit `flit` of travel `i` may eject into the destination IP
    /// core: it resides in the destination port and every flit ahead of it
    /// has been delivered (flits leave in order).
    pub fn can_eject_flit(&self, i: usize, flit: usize) -> bool {
        let t = &self.travels[i];
        let k = match t.flit_pos(flit) {
            FlitPos::InNetwork(k) => k,
            _ => return false,
        };
        if k + 1 != t.route().len() {
            return false;
        }
        flit == 0 || t.flit_pos(flit - 1) == FlitPos::Delivered
    }

    /// Ejects flit `flit` of travel `i` into the destination IP core.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invariant`] if the move is not admissible.
    pub fn eject_flit(&mut self, i: usize, flit: usize) -> Result<()> {
        if !self.can_eject_flit(i, flit) {
            return Err(Error::Invariant(format!(
                "inadmissible ejection of flit {flit} of travel index {i}"
            )));
        }
        let (port, id, is_tail) = {
            let t = &self.travels[i];
            (t.dest(), t.id(), t.is_tail(flit))
        };
        self.state.leave(port, id, is_tail)?;
        self.travels[i].set_flit_pos(flit, FlitPos::Delivered);
        Ok(())
    }

    /// Moves every fully-delivered travel from `T` to `A`, preserving order.
    /// Returns the identifiers of the newly arrived travels.
    ///
    /// One order-preserving pass; the cheap pre-scan keeps arrival-free
    /// steps allocation-free (a per-removal `Vec::remove` here was
    /// quadratic and dominated large-workload runs).
    pub fn drain_arrived(&mut self) -> Vec<MsgId> {
        if !self.travels.iter().any(Travel::is_arrived) {
            return Vec::new();
        }
        let mut newly = Vec::new();
        let drained = std::mem::take(&mut self.travels);
        self.travels = Vec::with_capacity(drained.len());
        for t in drained {
            if t.is_arrived() {
                newly.push(t.id());
                self.arrived.push(t);
            } else {
                self.travels.push(t);
            }
        }
        newly
    }

    // ------------------------------------------------------------------
    // Global predicates and measures
    // ------------------------------------------------------------------

    /// Whether any flit of any in-flight travel can move under wormhole
    /// admission rules. The deadlock predicate `Ω(σ)` of the paper is the
    /// negation of this (for non-empty `T`).
    pub fn any_move_possible(&self) -> bool {
        (0..self.travels.len()).any(|i| self.travel_can_progress(i))
    }

    /// Whether travel `i` can make progression: some flit of it can enter,
    /// advance, or eject.
    pub fn travel_can_progress(&self, i: usize) -> bool {
        let flits = self.travels[i].flit_count();
        (0..flits).any(|f| {
            self.can_enter_flit(i, f) || self.can_advance_flit(i, f) || self.can_eject_flit(i, f)
        })
    }

    /// The paper's termination measure `μxy(σ) = Σ |m.r|` over the in-flight
    /// travels: total remaining header route length.
    pub fn route_length_measure(&self) -> u64 {
        self.travels
            .iter()
            .map(|t| t.remaining_route() as u64)
            .sum()
    }

    /// The refined, strictly-decreasing measure: total number of flit moves
    /// still needed to deliver every in-flight message.
    pub fn progress_measure(&self) -> u64 {
        self.travels.iter().map(Travel::progress_potential).sum()
    }

    /// A compact canonical encoding of the configuration's dynamic part:
    /// every flit position of every message (in-flight *and* arrived),
    /// concatenated in [`MsgId`] order.
    ///
    /// Routes are static for a fixed workload, and the network state `ST` is
    /// a function of the flit positions (see [`Config::from_travels`]), so
    /// two configurations of the same workload are equal exactly when their
    /// position keys are equal. Encoding per flit: `0` for pending,
    /// `k + 1` for in-network at route index `k`, [`u16::MAX`] for
    /// delivered. Route indices are *relative* positions, invariant under
    /// port relabeling — which is what makes this key the right carrier for
    /// symmetry reduction in `genoc-explore`.
    ///
    /// # Panics
    ///
    /// Panics if a route is longer than `u16::MAX - 1` hops (no supported
    /// topology comes anywhere near this).
    pub fn position_key(&self) -> Vec<u16> {
        let mut slots: Vec<&Travel> = self.travels.iter().chain(self.arrived.iter()).collect();
        slots.sort_by_key(|t| t.id().index());
        let total: usize = slots.iter().map(|t| t.flit_count()).sum();
        let mut key = Vec::with_capacity(total);
        for t in slots {
            for pos in t.flit_positions() {
                key.push(match pos {
                    FlitPos::Pending => 0,
                    FlitPos::InNetwork(k) => {
                        u16::try_from(k + 1).expect("route index exceeds u16 encoding")
                    }
                    FlitPos::Delivered => u16::MAX,
                });
            }
        }
        key
    }

    /// FNV-1a hash of [`Config::position_key`]: a cheap 64-bit state
    /// fingerprint for visited sets and duplicate detection.
    pub fn state_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in self.position_key() {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Verifies the cross-structure invariants: worm shapes, buffer
    /// occupancy matching flit positions, and ownership matching the owned
    /// route ranges.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invariant`] describing the first violation found.
    pub fn validate(&self, net: &dyn Network) -> Result<()> {
        let mut expected = NetworkState::for_network(net);
        for t in self.travels.iter().chain(self.arrived.iter()) {
            t.check_invariants()?;
            for pos in t.flit_positions() {
                if let FlitPos::InNetwork(k) = pos {
                    expected.enter(t.route()[k], t.id())?;
                }
            }
            if let Some((lo, hi)) = t.owned_route_range() {
                for k in lo..=hi {
                    expected.claim(t.route()[k], t.id())?;
                }
            }
        }
        for p in net.ports() {
            let got = self.state.port(p);
            let want = expected.port(p);
            if got != want {
                return Err(Error::Invariant(format!(
                    "port {p}: state {got:?} but flit positions imply {want:?}"
                )));
            }
        }
        for t in &self.arrived {
            if !t.is_arrived() {
                return Err(Error::Invariant(format!(
                    "travel {} in A but not fully delivered",
                    t.id()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::line::{LineNetwork, LineRouting};

    fn setup(nodes: usize, capacity: u32, specs: &[MessageSpec]) -> (LineNetwork, Config) {
        let net = LineNetwork::new(nodes, capacity);
        let routing = LineRouting::new(&net);
        let cfg = Config::from_specs(&net, &routing, specs).unwrap();
        (net, cfg)
    }

    fn spec(s: usize, d: usize, flits: usize) -> MessageSpec {
        MessageSpec::new(NodeId::from_index(s), NodeId::from_index(d), flits)
    }

    #[test]
    fn single_flit_message_walks_its_route() {
        let (net, mut cfg) = setup(3, 1, &[spec(0, 2, 1)]);
        cfg.validate(&net).unwrap();
        assert!(cfg.can_enter_flit(0, 0));
        cfg.enter_flit(0, 0).unwrap();
        cfg.validate(&net).unwrap();
        let hops = cfg.travel(0).route().len() - 1;
        for _ in 0..hops {
            assert!(cfg.can_advance_flit(0, 0));
            cfg.advance_flit(0, 0).unwrap();
            cfg.validate(&net).unwrap();
        }
        assert!(
            !cfg.can_advance_flit(0, 0),
            "at destination only ejection remains"
        );
        assert!(cfg.can_eject_flit(0, 0));
        cfg.eject_flit(0, 0).unwrap();
        cfg.validate(&net).unwrap();
        assert_eq!(cfg.drain_arrived().len(), 1);
        assert!(cfg.is_evacuated());
        // Every port released.
        assert!(cfg.state().ports().all(|p| p.available()));
    }

    #[test]
    fn body_flit_cannot_enter_before_head() {
        let (_, cfg) = setup(3, 2, &[spec(0, 2, 2)]);
        assert!(cfg.can_enter_flit(0, 0));
        assert!(!cfg.can_enter_flit(0, 1));
    }

    #[test]
    fn body_flit_follows_head_into_same_port() {
        let (net, mut cfg) = setup(3, 2, &[spec(0, 2, 2)]);
        cfg.enter_flit(0, 0).unwrap();
        assert!(
            cfg.can_enter_flit(0, 1),
            "capacity 2 admits the body flit too"
        );
        cfg.enter_flit(0, 1).unwrap();
        cfg.validate(&net).unwrap();
        assert_eq!(cfg.state().port(cfg.travel(0).route()[0]).occupied(), 2);
    }

    #[test]
    fn capacity_one_serialises_the_worm() {
        let (net, mut cfg) = setup(3, 1, &[spec(0, 2, 2)]);
        cfg.enter_flit(0, 0).unwrap();
        assert!(!cfg.can_enter_flit(0, 1), "port full");
        cfg.advance_flit(0, 0).unwrap();
        assert!(
            cfg.can_enter_flit(0, 1),
            "vacated and still owned by the worm"
        );
        cfg.enter_flit(0, 1).unwrap();
        cfg.validate(&net).unwrap();
    }

    #[test]
    fn competing_header_is_blocked_by_ownership() {
        let (net, mut cfg) = setup(3, 2, &[spec(0, 2, 2), spec(0, 1, 1)]);
        cfg.enter_flit(0, 0).unwrap();
        assert!(
            !cfg.can_enter_flit(1, 0),
            "local in-port owned by travel 0 until its tail passes"
        );
        // Walk travel 0's head forward; ownership of the in-port persists
        // until the tail flit leaves it.
        cfg.advance_flit(0, 0).unwrap();
        assert!(!cfg.can_enter_flit(1, 0));
        cfg.enter_flit(0, 1).unwrap(); // tail enters
        cfg.advance_flit(0, 0).unwrap();
        cfg.advance_flit(0, 1).unwrap(); // tail leaves route[0]
        assert!(
            cfg.can_enter_flit(1, 0),
            "ownership released after tail passed"
        );
        cfg.validate(&net).unwrap();
    }

    #[test]
    fn flits_eject_in_order() {
        let (net, mut cfg) = setup(2, 2, &[spec(0, 1, 2)]);
        cfg.enter_flit(0, 0).unwrap();
        cfg.enter_flit(0, 1).unwrap();
        let hops = cfg.travel(0).route().len() - 1;
        for _ in 0..hops {
            cfg.advance_flit(0, 0).unwrap();
            cfg.advance_flit(0, 1).unwrap();
        }
        assert!(!cfg.can_eject_flit(0, 1), "tail must wait for the head");
        cfg.eject_flit(0, 0).unwrap();
        assert!(cfg.can_eject_flit(0, 1));
        cfg.eject_flit(0, 1).unwrap();
        cfg.validate(&net).unwrap();
    }

    #[test]
    fn measures_decrease_with_each_move() {
        let (_, mut cfg) = setup(3, 1, &[spec(0, 2, 1)]);
        let mut last = cfg.progress_measure();
        cfg.enter_flit(0, 0).unwrap();
        assert_eq!(cfg.progress_measure(), last - 1);
        last = cfg.progress_measure();
        cfg.advance_flit(0, 0).unwrap();
        assert_eq!(cfg.progress_measure(), last - 1);
    }

    #[test]
    fn route_length_measure_matches_paper_definition() {
        let (_, mut cfg) = setup(3, 1, &[spec(0, 2, 1), spec(1, 2, 1)]);
        let expected: u64 = cfg
            .travels()
            .iter()
            .map(|t| (t.route().len() - 1) as u64)
            .sum();
        assert_eq!(cfg.route_length_measure(), expected);
        cfg.enter_flit(0, 0).unwrap();
        assert_eq!(
            cfg.route_length_measure(),
            expected,
            "entry does not shorten |m.r|"
        );
        cfg.advance_flit(0, 0).unwrap();
        assert_eq!(cfg.route_length_measure(), expected - 1);
    }

    #[test]
    fn from_travels_reconstructs_state() {
        let (net, mut cfg) = setup(3, 2, &[spec(0, 2, 2)]);
        cfg.enter_flit(0, 0).unwrap();
        cfg.enter_flit(0, 1).unwrap();
        cfg.advance_flit(0, 0).unwrap();
        let rebuilt = Config::from_travels(&net, cfg.travels().to_vec()).unwrap();
        assert_eq!(rebuilt.state(), cfg.state());
    }

    #[test]
    fn from_travels_rejects_conflicting_ownership() {
        let (net, cfg) = setup(3, 2, &[spec(0, 2, 1), spec(0, 1, 1)]);
        let mut t0 = cfg.travel(0).clone();
        let mut t1 = cfg.travel(1).clone();
        // Both claim route[0] (the shared local in-port of node 0).
        t0.set_flit_pos(0, FlitPos::InNetwork(0));
        t1.set_flit_pos(0, FlitPos::InNetwork(0));
        assert!(Config::from_travels(&net, vec![t0, t1]).is_err());
    }

    #[test]
    fn progress_predicates_match_moves() {
        let (_, mut cfg) = setup(3, 1, &[spec(0, 2, 1)]);
        assert!(cfg.any_move_possible());
        assert!(cfg.travel_can_progress(0));
        cfg.enter_flit(0, 0).unwrap();
        assert!(cfg.any_move_possible());
    }
}
