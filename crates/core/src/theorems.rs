//! Executable statements of the three global GeNoC theorems.
//!
//! * **CorrThm** — every message reaching a destination was emitted at a
//!   valid source, was destined to that destination, and followed a valid
//!   route ([`check_correctness`]).
//! * **EvacThm** — `GeNoC(σ).A = σ.T`: every injected message arrives and
//!   leaves the network ([`check_evacuation`]).
//! * **DeadThm** — the routing function is deadlock-free iff its port
//!   dependency graph is acyclic; the graph machinery lives in
//!   `genoc-depgraph` and the executable two-directional check in
//!   `genoc-verif`.

use std::collections::BTreeSet;

use crate::ids::MsgId;
use crate::interpreter::{Outcome, RunResult};
use crate::network::Network;
use crate::routing::{is_valid_route, RoutingFunction};
use crate::spec::MessageSpec;

/// Result of checking the evacuation theorem on a finished run.
#[derive(Clone, Debug)]
pub struct EvacuationReport {
    /// Whether `GeNoC(σ).A = σ.T` held.
    pub holds: bool,
    /// How the run ended.
    pub outcome: Outcome,
    /// Messages that were injected but never arrived.
    pub missing: Vec<MsgId>,
    /// Messages that arrived but were never injected.
    pub unexpected: Vec<MsgId>,
}

/// Checks the evacuation theorem: the run terminated with every injected
/// message — and only those — in the arrived list.
///
/// # Examples
///
/// ```
/// use genoc_core::line::{LineNetwork, LineRouting, LineSwitching};
/// use genoc_core::injection::IdentityInjection;
/// use genoc_core::interpreter::{run, RunOptions};
/// use genoc_core::spec::MessageSpec;
/// use genoc_core::config::Config;
/// use genoc_core::theorems::check_evacuation;
/// use genoc_core::{MsgId, NodeId};
///
/// # fn main() -> Result<(), genoc_core::Error> {
/// let net = LineNetwork::new(3, 1);
/// let routing = LineRouting::new(&net);
/// let specs = [MessageSpec::new(NodeId::from_index(0), NodeId::from_index(2), 2)];
/// let cfg = Config::from_specs(&net, &routing, &specs)?;
/// let injected: Vec<MsgId> = cfg.travels().iter().map(|t| t.id()).collect();
/// let result = run(&net, &IdentityInjection, &mut LineSwitching::default(), cfg,
///                  &RunOptions::default())?;
/// assert!(check_evacuation(&injected, &result).holds);
/// # Ok(())
/// # }
/// ```
pub fn check_evacuation(injected: &[MsgId], result: &RunResult) -> EvacuationReport {
    let injected: BTreeSet<MsgId> = injected.iter().copied().collect();
    let arrived: BTreeSet<MsgId> = result.config.arrived().iter().map(|t| t.id()).collect();
    let missing: Vec<MsgId> = injected.difference(&arrived).copied().collect();
    let unexpected: Vec<MsgId> = arrived.difference(&injected).copied().collect();
    EvacuationReport {
        holds: result.outcome == Outcome::Evacuated && missing.is_empty() && unexpected.is_empty(),
        outcome: result.outcome,
        missing,
        unexpected,
    }
}

/// Result of checking the correctness theorem on a finished run.
#[derive(Clone, Debug)]
pub struct CorrectnessReport {
    /// Number of arrived messages whose trajectory was validated.
    pub messages_checked: usize,
    /// Human-readable descriptions of every violation found.
    pub violations: Vec<String>,
}

impl CorrectnessReport {
    /// Whether the correctness theorem held for every arrived message.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks the original GeNoC correctness theorem against a recorded trace:
/// every arrived message was emitted at the local in-port of its declared
/// source node, ended at the local out-port of its declared destination node,
/// and the port path its header followed is a valid route of the routing
/// function.
///
/// The run must have been executed with `RunOptions::record_trace` enabled;
/// otherwise every arrived message is reported as a violation (an empty
/// trajectory is not a valid route).
pub fn check_correctness(
    net: &dyn Network,
    routing: &dyn RoutingFunction,
    specs: &[MessageSpec],
    result: &RunResult,
) -> CorrectnessReport {
    let mut violations = Vec::new();
    let mut checked = 0;
    for t in result.config.arrived() {
        checked += 1;
        let id = t.id();
        let path = result.trace.flit_path(id, 0);
        if path.is_empty() {
            violations.push(format!("{id}: no recorded trajectory"));
            continue;
        }
        // Emitted at a valid source: the declared source node's local in-port.
        let spec = match specs.get(id.index()) {
            Some(s) => s,
            None => {
                violations.push(format!("{id}: arrived but was never specified"));
                continue;
            }
        };
        let expected_start = net.local_in(spec.source);
        if path[0] != expected_start {
            violations.push(format!(
                "{id}: emitted at {} instead of {}",
                net.port_label(path[0]),
                net.port_label(expected_start)
            ));
        }
        // Destined to d: the declared destination node's local out-port.
        let expected_end = net.local_out(spec.dest);
        let end = *path.last().expect("non-empty");
        if end != expected_end {
            violations.push(format!(
                "{id}: arrived at {} instead of {}",
                net.port_label(end),
                net.port_label(expected_end)
            ));
        }
        // Followed a valid route.
        if !is_valid_route(net, routing, &path) {
            violations.push(format!("{id}: header path is not a valid route"));
        }
        // Every flit was delivered and followed the header's path.
        for f in 0..t.flit_count() {
            if !result.trace.flit_delivered(id, f as u32) {
                violations.push(format!("{id}: flit {f} never delivered in trace"));
            }
            if f > 0 && result.trace.flit_path(id, f as u32) != path {
                violations.push(format!("{id}: flit {f} deviated from the header path"));
            }
        }
    }
    CorrectnessReport {
        messages_checked: checked,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::ids::NodeId;
    use crate::injection::IdentityInjection;
    use crate::interpreter::{run, RunOptions};
    use crate::line::{LineNetwork, LineRouting, LineSwitching};

    fn spec(s: usize, d: usize, flits: usize) -> MessageSpec {
        MessageSpec::new(NodeId::from_index(s), NodeId::from_index(d), flits)
    }

    fn traced_run(specs: &[MessageSpec]) -> (LineNetwork, LineRouting, RunResult) {
        let net = LineNetwork::new(4, 1);
        let routing = LineRouting::new(&net);
        let cfg = Config::from_specs(&net, &routing, specs).unwrap();
        let options = RunOptions {
            record_trace: true,
            ..RunOptions::default()
        };
        let result = run(
            &net,
            &IdentityInjection,
            &mut LineSwitching::default(),
            cfg,
            &options,
        )
        .unwrap();
        (net, routing, result)
    }

    #[test]
    fn evacuation_holds_on_line() {
        let specs = [spec(0, 3, 2), spec(3, 1, 3), spec(2, 2, 1)];
        let (_, _, result) = traced_run(&specs);
        let injected: Vec<MsgId> = (0..specs.len()).map(MsgId::from_index).collect();
        let report = check_evacuation(&injected, &result);
        assert!(report.holds, "{report:?}");
    }

    #[test]
    fn evacuation_detects_missing_messages() {
        let specs = [spec(0, 3, 1)];
        let (_, _, result) = traced_run(&specs);
        let phantom = MsgId::from_index(99);
        let report = check_evacuation(&[MsgId::from_index(0), phantom], &result);
        assert!(!report.holds);
        assert_eq!(report.missing, vec![phantom]);
    }

    #[test]
    fn correctness_holds_on_line() {
        let specs = [spec(0, 3, 2), spec(3, 0, 2)];
        let (net, routing, result) = traced_run(&specs);
        let report = check_correctness(&net, &routing, &specs, &result);
        assert!(report.holds(), "{:?}", report.violations);
        assert_eq!(report.messages_checked, 2);
    }

    #[test]
    fn correctness_needs_a_trace() {
        let net = LineNetwork::new(3, 1);
        let routing = LineRouting::new(&net);
        let specs = [spec(0, 2, 1)];
        let cfg = Config::from_specs(&net, &routing, &specs).unwrap();
        let result = run(
            &net,
            &IdentityInjection,
            &mut LineSwitching::default(),
            cfg,
            &RunOptions::default(),
        )
        .unwrap();
        let report = check_correctness(&net, &routing, &specs, &result);
        assert!(!report.holds());
    }

    #[test]
    fn correctness_flags_wrong_destination_claim() {
        let specs = [spec(0, 3, 1)];
        let (net, routing, result) = traced_run(&specs);
        // Lie about the workload: claim the message was destined elsewhere.
        let lied = [spec(0, 1, 1)];
        let report = check_correctness(&net, &routing, &lied, &result);
        assert!(!report.holds());
    }
}
