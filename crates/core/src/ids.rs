//! Dense identifier newtypes used across the GeNoC model.
//!
//! All identifiers are dense indices into per-instance tables, so they can be
//! used directly to index vectors without hashing. They are deliberately
//! opaque: the meaning of a [`PortId`] (its coordinates, cardinal name,
//! direction, …) is owned by the network instance that issued it and can be
//! recovered through [`crate::network::Network::attrs`] and
//! [`crate::network::Network::port_label`].

use std::fmt;

/// Identifier of a port in a fixed network instance.
///
/// Ports are numbered densely from `0..`[`port_count`], so a `PortId` doubles
/// as an index into per-port tables such as the network state or a dependency
/// graph.
///
/// [`port_count`]: crate::network::Network::port_count
///
/// # Examples
///
/// ```
/// use genoc_core::PortId;
///
/// let p = PortId::from_index(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PortId(u32);

impl PortId {
    /// Creates a port identifier from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`.
    pub fn from_index(index: usize) -> Self {
        PortId(u32::try_from(index).expect("port index exceeds u32::MAX"))
    }

    /// Returns the dense index of this port.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a processing node (an IP core plus its switch).
///
/// Nodes are numbered densely from `0..`[`node_count`].
///
/// [`node_count`]: crate::network::Network::node_count
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`.
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Unique identifier of a travel (a message in flight), the `id` component of
/// the paper's travel triple `⟨id, c, d⟩`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct MsgId(u32);

impl MsgId {
    /// Creates a message identifier from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`.
    pub fn from_index(index: usize) -> Self {
        MsgId(u32::try_from(index).expect("message index exceeds u32::MAX"))
    }

    /// Returns the dense index of this message.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_id_round_trips_through_index() {
        for i in [0usize, 1, 17, 65_535] {
            assert_eq!(PortId::from_index(i).index(), i);
        }
    }

    #[test]
    fn node_id_round_trips_through_index() {
        assert_eq!(NodeId::from_index(42).index(), 42);
    }

    #[test]
    fn msg_id_round_trips_through_index() {
        assert_eq!(MsgId::from_index(7).index(), 7);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(PortId::from_index(1) < PortId::from_index(2));
        assert!(NodeId::from_index(0) < NodeId::from_index(9));
        assert!(MsgId::from_index(3) < MsgId::from_index(4));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(PortId::from_index(5).to_string(), "p5");
        assert_eq!(NodeId::from_index(5).to_string(), "n5");
        assert_eq!(MsgId::from_index(5).to_string(), "m5");
    }

    #[test]
    fn ids_default_to_zero() {
        assert_eq!(PortId::default().index(), 0);
        assert_eq!(NodeId::default().index(), 0);
        assert_eq!(MsgId::default().index(), 0);
    }
}
