//! The GeNoC interpreter: the recursive function
//!
//! ```text
//! GeNoC(σ) = σ                    if σ.T = ∅
//!          = σ                    if Ω(R(I(σ)))
//!          = GeNoC(S(R(I(σ))))    otherwise
//! ```
//!
//! implemented as a loop with run-time enforcement of the progress and
//! measure contracts behind proof obligation (C-5). Routes are pre-computed
//! when the configuration is built (the `GeNoC2D` specialisation: with
//! deterministic routing and identity injection, `R` and `I` can be hoisted
//! out of the recursion).

use crate::config::Config;
use crate::error::{Error, Result};
use crate::ids::MsgId;
use crate::injection::InjectionMethod;
use crate::network::Network;
use crate::switching::SwitchingPolicy;
use crate::trace::Trace;

/// Tuning knobs for a run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunOptions {
    /// Abort with [`Outcome::StepLimit`] after this many switching steps.
    pub max_steps: u64,
    /// Record every flit movement into the result's [`Trace`].
    pub record_trace: bool,
    /// Record the value of both measures after every step.
    pub record_measures: bool,
    /// Re-validate the configuration invariants after every step (slow;
    /// meant for tests).
    pub check_invariants: bool,
    /// Enforce the (C-5) contract: error out if a non-deadlocked step moves
    /// nothing or fails to decrease the progress measure.
    pub enforce_measure: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            max_steps: 1_000_000,
            record_trace: false,
            record_measures: false,
            check_invariants: false,
            enforce_measure: true,
        }
    }
}

/// How a run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// All messages arrived: `GeNoC(σ).A = σ.T` (the evacuation theorem's
    /// conclusion).
    Evacuated,
    /// The configuration reached a deadlock: `Ω(σ)` held with `σ.T ≠ ∅`.
    Deadlock,
    /// The step limit was exhausted (indicates livelock or an insufficient
    /// limit; cannot happen when (C-5) holds and the limit exceeds the
    /// initial measure).
    StepLimit,
}

/// Everything a run produced.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: Outcome,
    /// Number of switching steps performed.
    pub steps: u64,
    /// The final configuration.
    pub config: Config,
    /// Movement trace (empty unless requested).
    pub trace: Trace,
    /// Per-step `(μxy, progress)` measure values (empty unless requested).
    pub measures: Vec<(u64, u64)>,
    /// Identifiers of travels in arrival order.
    pub arrival_order: Vec<MsgId>,
}

impl RunResult {
    /// Whether the run evacuated every message.
    pub fn evacuated(&self) -> bool {
        self.outcome == Outcome::Evacuated
    }
}

/// Runs the GeNoC interpreter to termination.
///
/// # Errors
///
/// Propagates invariant violations from the switching policy, and — when
/// [`RunOptions::enforce_measure`] is set — reports
/// [`Error::ProgressViolation`] / [`Error::MeasureViolation`] if the policy
/// breaks the (C-5) contract.
///
/// # Examples
///
/// ```
/// use genoc_core::line::{LineNetwork, LineRouting, LineSwitching};
/// use genoc_core::injection::IdentityInjection;
/// use genoc_core::interpreter::{run, Outcome, RunOptions};
/// use genoc_core::spec::MessageSpec;
/// use genoc_core::config::Config;
/// use genoc_core::NodeId;
///
/// # fn main() -> Result<(), genoc_core::Error> {
/// let net = LineNetwork::new(4, 1);
/// let routing = LineRouting::new(&net);
/// let specs = [
///     MessageSpec::new(NodeId::from_index(0), NodeId::from_index(3), 2),
///     MessageSpec::new(NodeId::from_index(3), NodeId::from_index(0), 2),
/// ];
/// let cfg = Config::from_specs(&net, &routing, &specs)?;
/// let mut switching = LineSwitching::default();
/// let result = run(&net, &IdentityInjection, &mut switching, cfg, &RunOptions::default())?;
/// assert_eq!(result.outcome, Outcome::Evacuated);
/// assert_eq!(result.config.arrived().len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn run(
    net: &dyn Network,
    injection: &dyn InjectionMethod,
    switching: &mut dyn SwitchingPolicy,
    mut cfg: Config,
    options: &RunOptions,
) -> Result<RunResult> {
    let mut trace = Trace::new(options.record_trace);
    let mut measures = Vec::new();
    let mut arrival_order = Vec::new();
    let mut steps: u64 = 0;

    let outcome = loop {
        // Injection runs before the termination test so that non-identity
        // methods (the scheduled-injection extension) can still release
        // messages into a drained travel list; under the identity injection
        // of the paper the order is immaterial.
        injection.inject(net, &mut cfg)?;
        if cfg.is_evacuated() {
            break Outcome::Evacuated;
        }
        if switching.is_deadlock(net, &cfg) {
            break Outcome::Deadlock;
        }
        if steps >= options.max_steps {
            break Outcome::StepLimit;
        }

        let before = cfg.progress_measure();
        trace.begin_step(steps);
        let report = switching.step(net, &mut cfg, &mut trace)?;
        arrival_order.extend(cfg.drain_arrived());
        let after = cfg.progress_measure();

        if options.enforce_measure {
            if report.moves() == 0 {
                return Err(Error::ProgressViolation { step: steps });
            }
            if after >= before {
                return Err(Error::MeasureViolation {
                    step: steps,
                    before,
                    after,
                });
            }
        }
        if options.record_measures {
            measures.push((cfg.route_length_measure(), after));
        }
        if options.check_invariants {
            cfg.validate(net)?;
        }
        steps += 1;
    };

    Ok(RunResult {
        outcome,
        steps,
        config: cfg,
        trace,
        measures,
        arrival_order,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::injection::IdentityInjection;
    use crate::line::{LineNetwork, LineRouting, LineSwitching};
    use crate::spec::MessageSpec;

    fn spec(s: usize, d: usize, flits: usize) -> MessageSpec {
        MessageSpec::new(NodeId::from_index(s), NodeId::from_index(d), flits)
    }

    fn evacuate(nodes: usize, capacity: u32, specs: &[MessageSpec]) -> RunResult {
        let net = LineNetwork::new(nodes, capacity);
        let routing = LineRouting::new(&net);
        let cfg = Config::from_specs(&net, &routing, specs).unwrap();
        let options = RunOptions {
            check_invariants: true,
            record_measures: true,
            ..RunOptions::default()
        };
        run(
            &net,
            &IdentityInjection,
            &mut LineSwitching::default(),
            cfg,
            &options,
        )
        .unwrap()
    }

    #[test]
    fn empty_workload_terminates_immediately() {
        let r = evacuate(2, 1, &[]);
        assert_eq!(r.outcome, Outcome::Evacuated);
        assert_eq!(r.steps, 0);
    }

    #[test]
    fn single_message_evacuates() {
        let r = evacuate(4, 1, &[spec(0, 3, 3)]);
        assert_eq!(r.outcome, Outcome::Evacuated);
        assert_eq!(r.config.arrived().len(), 1);
        assert_eq!(r.arrival_order, vec![MsgId::from_index(0)]);
    }

    #[test]
    fn opposing_messages_evacuate() {
        let r = evacuate(4, 1, &[spec(0, 3, 2), spec(3, 0, 2), spec(1, 2, 1)]);
        assert_eq!(r.outcome, Outcome::Evacuated);
        assert_eq!(r.config.arrived().len(), 3);
    }

    #[test]
    fn progress_measure_strictly_decreases() {
        let r = evacuate(4, 2, &[spec(0, 3, 2), spec(2, 0, 3)]);
        let progresses: Vec<u64> = r.measures.iter().map(|&(_, p)| p).collect();
        for w in progresses.windows(2) {
            assert!(
                w[1] < w[0],
                "progress measure must strictly decrease: {progresses:?}"
            );
        }
    }

    #[test]
    fn route_measure_weakly_decreases() {
        let r = evacuate(4, 1, &[spec(0, 3, 4)]);
        let mus: Vec<u64> = r.measures.iter().map(|&(mu, _)| mu).collect();
        for w in mus.windows(2) {
            assert!(w[1] <= w[0], "mu_xy must weakly decrease: {mus:?}");
        }
    }

    #[test]
    fn step_limit_is_reported() {
        let net = LineNetwork::new(4, 1);
        let routing = LineRouting::new(&net);
        let cfg = Config::from_specs(&net, &routing, &[spec(0, 3, 3)]).unwrap();
        let options = RunOptions {
            max_steps: 1,
            ..RunOptions::default()
        };
        let r = run(
            &net,
            &IdentityInjection,
            &mut LineSwitching::default(),
            cfg,
            &options,
        )
        .unwrap();
        assert_eq!(r.outcome, Outcome::StepLimit);
        assert_eq!(r.steps, 1);
    }

    #[test]
    fn many_messages_same_source_serialise() {
        let specs: Vec<_> = (0..5).map(|_| spec(0, 3, 2)).collect();
        let r = evacuate(4, 1, &specs);
        assert_eq!(r.outcome, Outcome::Evacuated);
        assert_eq!(r.config.arrived().len(), 5);
    }

    #[test]
    fn trace_is_recorded_on_request() {
        let net = LineNetwork::new(3, 1);
        let routing = LineRouting::new(&net);
        let cfg = Config::from_specs(&net, &routing, &[spec(0, 2, 1)]).unwrap();
        let options = RunOptions {
            record_trace: true,
            ..RunOptions::default()
        };
        let r = run(
            &net,
            &IdentityInjection,
            &mut LineSwitching::default(),
            cfg,
            &options,
        )
        .unwrap();
        let path = r.trace.flit_path(MsgId::from_index(0), 0);
        assert_eq!(path.len(), r.config.arrived()[0].route().len());
        assert!(r.trace.flit_delivered(MsgId::from_index(0), 0));
    }
}
