//! The [`InjectionMethod`] abstraction, the paper's identity injection, and
//! the scheduled-injection extension from its future-work discussion.

use std::cell::RefCell;

use crate::config::Config;
use crate::error::Result;
use crate::network::Network;
use crate::travel::Travel;

/// An injection method: the constituent `I` of the GeNoC triple.
///
/// Given a configuration, it decides which travels are ready for departure
/// and moves them into the network. The instances verified in the paper
/// assume all messages are injected at time 0, so the method is the identity
/// (proof obligation (C-4): `I(σ) = σ`); [`IdentityInjection`] implements
/// exactly that.
pub trait InjectionMethod {
    /// Human-readable name, e.g. `"identity"`.
    fn name(&self) -> String;

    /// Injects ready travels into the network state.
    ///
    /// # Errors
    ///
    /// Implementations return an error only on internal invariant violations.
    fn inject(&self, net: &dyn Network, cfg: &mut Config) -> Result<()>;
}

/// The identity injection `Iid` of the paper: all messages are already part
/// of the initial travel list, so injection changes nothing.
///
/// # Examples
///
/// ```
/// use genoc_core::injection::{IdentityInjection, InjectionMethod};
/// use genoc_core::line::{LineNetwork, LineRouting};
/// use genoc_core::spec::MessageSpec;
/// use genoc_core::config::Config;
/// use genoc_core::NodeId;
///
/// # fn main() -> Result<(), genoc_core::Error> {
/// let net = LineNetwork::new(2, 1);
/// let routing = LineRouting::new(&net);
/// let specs = [MessageSpec::new(NodeId::from_index(0), NodeId::from_index(1), 1)];
/// let mut cfg = Config::from_specs(&net, &routing, &specs)?;
/// let before = cfg.clone();
/// IdentityInjection.inject(&net, &mut cfg)?;
/// assert_eq!(before, cfg); // (C-4)
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct IdentityInjection;

impl InjectionMethod for IdentityInjection {
    fn name(&self) -> String {
        "identity".into()
    }

    fn inject(&self, _net: &dyn Network, _cfg: &mut Config) -> Result<()> {
        Ok(())
    }
}

/// Scheduled injection: the future-work extension sketched in Section IX of
/// the paper, where messages are not all present at time 0 but released into
/// the travel list over time.
///
/// Each travel carries a release step; on every interpreter iteration the
/// method moves the due travels into `σ.T`. If the travel list drains while
/// releases remain, the schedule fast-forwards to the next release (idle
/// network time is skipped), so the interpreter's `σ.T = ∅` termination
/// test remains correct.
///
/// The paper's constraint (C-4) obviously does not hold for this method —
/// it exists to demonstrate the *rephrased* evacuation theorem: every
/// message that is eventually injected eventually leaves the network.
///
/// # Examples
///
/// ```
/// use genoc_core::injection::ScheduledInjection;
/// use genoc_core::line::{LineNetwork, LineRouting, LineSwitching};
/// use genoc_core::interpreter::{run, Outcome, RunOptions};
/// use genoc_core::spec::MessageSpec;
/// use genoc_core::travel::Travel;
/// use genoc_core::config::Config;
/// use genoc_core::{MsgId, NodeId};
///
/// # fn main() -> Result<(), genoc_core::Error> {
/// let net = LineNetwork::new(3, 1);
/// let routing = LineRouting::new(&net);
/// let spec = MessageSpec::new(NodeId::from_index(0), NodeId::from_index(2), 2);
/// let late = Travel::from_spec(&net, &routing, MsgId::from_index(0), &spec)?;
/// let injection = ScheduledInjection::new(vec![(5, late)]);
/// let cfg = Config::from_specs(&net, &routing, &[])?;
/// let result = run(&net, &injection, &mut LineSwitching::default(), cfg,
///                  &RunOptions::default())?;
/// assert_eq!(result.outcome, Outcome::Evacuated);
/// assert_eq!(result.config.arrived().len(), 1);
/// assert_eq!(injection.remaining(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ScheduledInjection {
    /// `(release step, travel)` pairs, earliest release last (kept sorted so
    /// releases pop off the back). Interior mutability because the
    /// interpreter drives injection through a shared reference.
    schedule: RefCell<Vec<(u64, Travel)>>,
    step: RefCell<u64>,
}

impl ScheduledInjection {
    /// Creates a scheduled injection from `(release step, travel)` pairs.
    pub fn new(mut schedule: Vec<(u64, Travel)>) -> Self {
        // Latest release first, so due items pop from the back.
        schedule.sort_by_key(|entry| std::cmp::Reverse(entry.0));
        ScheduledInjection {
            schedule: RefCell::new(schedule),
            step: RefCell::new(0),
        }
    }

    /// Number of travels not yet released.
    pub fn remaining(&self) -> usize {
        self.schedule.borrow().len()
    }
}

impl InjectionMethod for ScheduledInjection {
    fn name(&self) -> String {
        "scheduled".into()
    }

    fn inject(&self, _net: &dyn Network, cfg: &mut Config) -> Result<()> {
        let mut schedule = self.schedule.borrow_mut();
        let mut now = self.step.borrow_mut();
        // Fast-forward across idle gaps so `σ.T = ∅` keeps meaning "done".
        if cfg.is_evacuated() {
            if let Some(&(release, _)) = schedule.last() {
                *now = (*now).max(release);
            }
        }
        while schedule.last().is_some_and(|&(release, _)| release <= *now) {
            let (_, travel) = schedule.pop().expect("checked non-empty");
            cfg.push_travel(travel)?;
        }
        *now += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{MsgId, NodeId};
    use crate::line::{LineNetwork, LineRouting, LineSwitching};
    use crate::spec::MessageSpec;

    #[test]
    fn identity_injection_is_identity() {
        let net = LineNetwork::new(3, 1);
        let routing = LineRouting::new(&net);
        let specs = [
            MessageSpec::new(NodeId::from_index(0), NodeId::from_index(2), 2),
            MessageSpec::new(NodeId::from_index(2), NodeId::from_index(0), 1),
        ];
        let mut cfg = Config::from_specs(&net, &routing, &specs).unwrap();
        let before = cfg.clone();
        IdentityInjection.inject(&net, &mut cfg).unwrap();
        assert_eq!(before, cfg);
    }

    fn travel(net: &LineNetwork, routing: &LineRouting, id: usize, s: usize, d: usize) -> Travel {
        let spec = MessageSpec::new(NodeId::from_index(s), NodeId::from_index(d), 2);
        Travel::from_spec(net, routing, MsgId::from_index(id), &spec).unwrap()
    }

    #[test]
    fn scheduled_injection_releases_in_order() {
        let net = LineNetwork::new(3, 1);
        let routing = LineRouting::new(&net);
        let injection = ScheduledInjection::new(vec![
            (2, travel(&net, &routing, 1, 1, 2)),
            (0, travel(&net, &routing, 0, 0, 2)),
        ]);
        let mut cfg = Config::from_specs(&net, &routing, &[]).unwrap();
        injection.inject(&net, &mut cfg).unwrap(); // step 0: releases id 0
        assert_eq!(cfg.travels().len(), 1);
        assert_eq!(injection.remaining(), 1);
        injection.inject(&net, &mut cfg).unwrap(); // step 1: nothing due
        assert_eq!(cfg.travels().len(), 1);
        injection.inject(&net, &mut cfg).unwrap(); // step 2: releases id 1
        assert_eq!(cfg.travels().len(), 2);
        assert_eq!(injection.remaining(), 0);
    }

    #[test]
    fn scheduled_injection_fast_forwards_idle_gaps() {
        let net = LineNetwork::new(3, 1);
        let routing = LineRouting::new(&net);
        let injection = ScheduledInjection::new(vec![(1000, travel(&net, &routing, 0, 0, 2))]);
        let mut cfg = Config::from_specs(&net, &routing, &[]).unwrap();
        injection.inject(&net, &mut cfg).unwrap();
        assert_eq!(
            cfg.travels().len(),
            1,
            "empty travel list warps to the next release"
        );
    }

    #[test]
    fn scheduled_run_evacuates_every_release() {
        let net = LineNetwork::new(4, 1);
        let routing = LineRouting::new(&net);
        let injection = ScheduledInjection::new(vec![
            (0, travel(&net, &routing, 0, 0, 3)),
            (3, travel(&net, &routing, 1, 3, 0)),
            (40, travel(&net, &routing, 2, 2, 0)),
        ]);
        let cfg = Config::from_specs(&net, &routing, &[]).unwrap();
        let result = crate::interpreter::run(
            &net,
            &injection,
            &mut LineSwitching::default(),
            cfg,
            &crate::interpreter::RunOptions::default(),
        )
        .unwrap();
        assert_eq!(result.outcome, crate::interpreter::Outcome::Evacuated);
        assert_eq!(result.config.arrived().len(), 3);
        assert_eq!(injection.remaining(), 0);
    }
}
