//! Property-based tests over the core data structures: random admissible
//! move sequences keep every invariant intact, measures behave as specified,
//! and the greedy step agrees with the deadlock predicate.

#![cfg(test)]

use proptest::prelude::*;

use crate::config::Config;
use crate::ids::NodeId;
use crate::injection::IdentityInjection;
use crate::interpreter::{run, Outcome, RunOptions};
use crate::line::{LineNetwork, LineRouting, LineSwitching};
use crate::spec::MessageSpec;
use crate::step::{step_all, StepScratch};
use crate::trace::Trace;

fn specs_strategy(nodes: usize) -> impl Strategy<Value = Vec<MessageSpec>> {
    proptest::collection::vec((0..nodes, 0..nodes, 1usize..=5), 0..10).prop_map(|v| {
        v.into_iter()
            .map(|(s, d, f)| MessageSpec::new(NodeId::from_index(s), NodeId::from_index(d), f))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Any workload on the line evacuates, and every intermediate
    /// configuration passes the full structural validation.
    #[test]
    fn line_runs_preserve_all_invariants(
        nodes in 1usize..=6,
        capacity in 1u32..=3,
        specs in specs_strategy(6),
    ) {
        let net = LineNetwork::new(nodes, capacity);
        let routing = LineRouting::new(&net);
        let specs: Vec<MessageSpec> = specs
            .into_iter()
            .map(|mut s| {
                s.source = NodeId::from_index(s.source.index() % nodes);
                s.dest = NodeId::from_index(s.dest.index() % nodes);
                s
            })
            .collect();
        let cfg = Config::from_specs(&net, &routing, &specs).unwrap();
        let options = RunOptions { check_invariants: true, ..RunOptions::default() };
        let result = run(&net, &IdentityInjection, &mut LineSwitching::default(), cfg, &options)
            .unwrap();
        prop_assert_eq!(result.outcome, Outcome::Evacuated);
        prop_assert_eq!(result.config.arrived().len(), specs.len());
    }

    /// The progress measure decreases by exactly the number of flit moves
    /// performed in a step.
    #[test]
    fn progress_measure_counts_moves_exactly(
        nodes in 2usize..=5,
        capacity in 1u32..=3,
        specs in specs_strategy(5),
        steps in 1usize..20,
    ) {
        let net = LineNetwork::new(nodes, capacity);
        let routing = LineRouting::new(&net);
        let specs: Vec<MessageSpec> = specs
            .into_iter()
            .map(|mut s| {
                s.source = NodeId::from_index(s.source.index() % nodes);
                s.dest = NodeId::from_index(s.dest.index() % nodes);
                s
            })
            .collect();
        let mut cfg = Config::from_specs(&net, &routing, &specs).unwrap();
        let mut scratch = StepScratch::new(crate::network::Network::port_count(&net));
        let mut trace = Trace::new(false);
        for _ in 0..steps {
            if cfg.is_evacuated() {
                break;
            }
            let before = cfg.progress_measure();
            scratch.reset(crate::network::Network::port_count(&net));
            let order: Vec<usize> = (0..cfg.travels().len()).collect();
            let report = step_all(&mut cfg, &order, &mut scratch, &mut trace).unwrap();
            cfg.drain_arrived();
            let after = cfg.progress_measure();
            prop_assert_eq!(before - after, report.moves() as u64);
        }
    }

    /// The deadlock predicate agrees with the step function: on the line
    /// (acyclic routing) a non-evacuated configuration always moves.
    #[test]
    fn step_moves_iff_not_deadlocked(
        nodes in 2usize..=5,
        specs in specs_strategy(5),
    ) {
        let net = LineNetwork::new(nodes, 1);
        let routing = LineRouting::new(&net);
        let specs: Vec<MessageSpec> = specs
            .into_iter()
            .map(|mut s| {
                s.source = NodeId::from_index(s.source.index() % nodes);
                s.dest = NodeId::from_index(s.dest.index() % nodes);
                s
            })
            .collect();
        let mut cfg = Config::from_specs(&net, &routing, &specs).unwrap();
        let mut scratch = StepScratch::new(crate::network::Network::port_count(&net));
        let mut trace = Trace::new(false);
        for _ in 0..200 {
            if cfg.is_evacuated() {
                break;
            }
            prop_assert!(cfg.any_move_possible(), "line routing cannot deadlock");
            scratch.reset(crate::network::Network::port_count(&net));
            let order: Vec<usize> = (0..cfg.travels().len()).collect();
            let report = step_all(&mut cfg, &order, &mut scratch, &mut trace).unwrap();
            prop_assert!(report.moves() > 0);
            cfg.drain_arrived();
        }
        prop_assert!(cfg.is_evacuated(), "200 steps must suffice on a 5-node line");
    }

    /// `from_travels` round-trips any state reachable by admissible moves.
    #[test]
    fn from_travels_round_trips_reachable_states(
        seed_steps in 0usize..15,
        specs in specs_strategy(4),
    ) {
        let net = LineNetwork::new(4, 2);
        let routing = LineRouting::new(&net);
        let specs: Vec<MessageSpec> = specs
            .into_iter()
            .map(|mut s| {
                s.source = NodeId::from_index(s.source.index() % 4);
                s.dest = NodeId::from_index(s.dest.index() % 4);
                s
            })
            .collect();
        let mut cfg = Config::from_specs(&net, &routing, &specs).unwrap();
        let mut scratch = StepScratch::new(crate::network::Network::port_count(&net));
        let mut trace = Trace::new(false);
        for _ in 0..seed_steps {
            if cfg.is_evacuated() {
                break;
            }
            scratch.reset(crate::network::Network::port_count(&net));
            let order: Vec<usize> = (0..cfg.travels().len()).collect();
            step_all(&mut cfg, &order, &mut scratch, &mut trace).unwrap();
            cfg.drain_arrived();
        }
        let all: Vec<_> =
            cfg.travels().iter().chain(cfg.arrived().iter()).cloned().collect();
        let rebuilt = Config::from_travels(&net, all).unwrap();
        prop_assert_eq!(rebuilt.state(), cfg.state());
        prop_assert_eq!(rebuilt.travels().len(), cfg.travels().len());
        prop_assert_eq!(rebuilt.arrived().len(), cfg.arrived().len());
    }

    /// μxy never exceeds the progress measure and both reach zero together.
    #[test]
    fn measures_are_ordered(
        nodes in 2usize..=5,
        specs in specs_strategy(5),
    ) {
        let net = LineNetwork::new(nodes, 1);
        let routing = LineRouting::new(&net);
        let specs: Vec<MessageSpec> = specs
            .into_iter()
            .map(|mut s| {
                s.source = NodeId::from_index(s.source.index() % nodes);
                s.dest = NodeId::from_index(s.dest.index() % nodes);
                s
            })
            .collect();
        let cfg = Config::from_specs(&net, &routing, &specs).unwrap();
        prop_assert!(cfg.route_length_measure() <= cfg.progress_measure());
        if cfg.travels().is_empty() {
            prop_assert_eq!(cfg.progress_measure(), 0);
        }
    }
}
