//! Proof-obligation bookkeeping.
//!
//! GeNoC characterises its constituents by proof obligations; discharging
//! the instantiated obligations for a concrete design yields the three
//! global theorems for free. This module defines the obligation identities
//! and the report structure the per-instance checkers (in `genoc-verif`)
//! produce. The reports mirror the rows of the paper's Table I.

use std::fmt;
use std::time::Duration;

/// The proof obligations of the paper.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ObligationId {
    /// (C-1): every pair of ports connected by the routing function (for a
    /// reachable destination) is an edge of the dependency graph.
    C1,
    /// (C-2): every edge of the dependency graph is witnessed by a reachable
    /// destination routed across it.
    C2,
    /// (C-3): the port dependency graph has no cycle.
    C3,
    /// (C-4): the injection method is the identity.
    C4,
    /// (C-5): the termination measure strictly decreases on every
    /// non-deadlocked switching step.
    C5,
}

impl ObligationId {
    /// All obligations, in paper order.
    pub const ALL: [ObligationId; 5] = [
        ObligationId::C1,
        ObligationId::C2,
        ObligationId::C3,
        ObligationId::C4,
        ObligationId::C5,
    ];

    /// One-line description of the obligation.
    pub fn description(self) -> &'static str {
        match self {
            ObligationId::C1 => "routing steps are dependency-graph edges",
            ObligationId::C2 => "dependency-graph edges have routing witnesses",
            ObligationId::C3 => "the port dependency graph is acyclic",
            ObligationId::C4 => "the injection method is the identity",
            ObligationId::C5 => "the termination measure strictly decreases",
        }
    }
}

impl fmt::Display for ObligationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ObligationId::C1 => "C-1",
            ObligationId::C2 => "C-2",
            ObligationId::C3 => "C-3",
            ObligationId::C4 => "C-4",
            ObligationId::C5 => "C-5",
        };
        f.write_str(name)
    }
}

/// Outcome of discharging one proof obligation on one instance.
#[derive(Clone, Debug)]
pub struct ObligationReport {
    /// Which obligation was checked.
    pub id: ObligationId,
    /// Name of the instance (topology + routing) it was checked on.
    pub instance: String,
    /// Number of individual cases the decision procedure examined (the
    /// executable analogue of the paper's case-analysis size).
    pub cases: u64,
    /// Human-readable descriptions of every violation found.
    pub violations: Vec<String>,
    /// Wall-clock time the discharge took.
    pub elapsed: Duration,
}

impl ObligationReport {
    /// Whether the obligation holds on the instance.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for ObligationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>4} on {:<28} {:>10} cases  {:>9.3?}  {}",
            self.id.to_string(),
            self.instance,
            self.cases,
            self.elapsed,
            if self.holds() {
                "ok".to_string()
            } else {
                format!("{} VIOLATIONS", self.violations.len())
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_obligations_listed_in_order() {
        assert_eq!(ObligationId::ALL.len(), 5);
        assert_eq!(ObligationId::ALL[0].to_string(), "C-1");
        assert_eq!(ObligationId::ALL[4].to_string(), "C-5");
    }

    #[test]
    fn report_display_mentions_outcome() {
        let ok = ObligationReport {
            id: ObligationId::C3,
            instance: "mesh-2x2/xy".into(),
            cases: 10,
            violations: vec![],
            elapsed: Duration::from_millis(1),
        };
        assert!(ok.to_string().contains("ok"));
        let bad = ObligationReport {
            violations: vec!["edge".into()],
            ..ok
        };
        assert!(!bad.holds());
        assert!(bad.to_string().contains("VIOLATIONS"));
    }

    #[test]
    fn descriptions_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for id in ObligationId::ALL {
            assert!(seen.insert(id.description()));
        }
    }
}
