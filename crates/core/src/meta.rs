//! Instance metadata: a closed vocabulary of topology, routing, and
//! switching *kinds*, and the [`InstanceMeta`] record that identifies a
//! concrete instantiation by data instead of by trait object.
//!
//! The constituent traits ([`crate::routing::RoutingFunction`],
//! [`crate::switching::SwitchingPolicy`], [`crate::network::Network`]) are
//! open-ended; campaign tooling needs the opposite — a finite, enumerable,
//! serialisable description of *which* instantiation is under test, so that
//! scenario matrices can be expanded, filtered, sharded across threads, and
//! reported on. The kinds below name every instantiation the workspace
//! ships; `genoc-verif`'s instance registry maps an [`InstanceMeta`] back to
//! live trait objects.

/// The topology families shipped by `genoc-topology`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TopologyKind {
    /// HERMES-style 2D mesh (the paper's Fig. 1).
    Mesh,
    /// 2D torus (wrap-around mesh), optionally with virtual channels.
    Torus,
    /// Unidirectional-pair ring, optionally with virtual channels.
    Ring,
    /// Spidergon (ring plus across links), optionally with ring VCs.
    Spidergon,
}

impl TopologyKind {
    /// Every topology kind, in display order.
    pub const ALL: [TopologyKind; 4] = [
        TopologyKind::Mesh,
        TopologyKind::Torus,
        TopologyKind::Ring,
        TopologyKind::Spidergon,
    ];

    /// Short lowercase label, e.g. `"mesh"`.
    pub fn label(self) -> &'static str {
        match self {
            TopologyKind::Mesh => "mesh",
            TopologyKind::Torus => "torus",
            TopologyKind::Ring => "ring",
            TopologyKind::Spidergon => "spidergon",
        }
    }
}

/// The routing functions shipped by `genoc-routing`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RoutingKind {
    /// The paper's `Rxy`: X first, then Y.
    Xy,
    /// Axis-swapped twin of XY.
    Yx,
    /// The deliberately deadlock-prone deterministic XY/YX mixture.
    MixedXyYx,
    /// West-first turn model (adaptive, acyclic).
    WestFirst,
    /// North-last turn model (adaptive, acyclic).
    NorthLast,
    /// Negative-first turn model (adaptive, acyclic).
    NegativeFirst,
    /// Fully adaptive minimal routing (cyclic on 2D meshes).
    MinimalAdaptive,
    /// Shortest-path ring routing (cyclic from four nodes).
    RingShortest,
    /// Dateline ring routing over two virtual channels (acyclic).
    RingDateline,
    /// Plain dimension-order torus routing (cyclic from side four).
    TorusDor,
    /// Dimension-order with per-dimension datelines on two VCs (acyclic).
    TorusDorDateline,
    /// Spidergon across-first routing (cyclic from eight nodes).
    AcrossFirst,
    /// Across-first with dateline ring VCs (acyclic).
    AcrossFirstDateline,
}

impl RoutingKind {
    /// Every routing kind, in display order.
    pub const ALL: [RoutingKind; 13] = [
        RoutingKind::Xy,
        RoutingKind::Yx,
        RoutingKind::MixedXyYx,
        RoutingKind::WestFirst,
        RoutingKind::NorthLast,
        RoutingKind::NegativeFirst,
        RoutingKind::MinimalAdaptive,
        RoutingKind::RingShortest,
        RoutingKind::RingDateline,
        RoutingKind::TorusDor,
        RoutingKind::TorusDorDateline,
        RoutingKind::AcrossFirst,
        RoutingKind::AcrossFirstDateline,
    ];

    /// Short label matching the instance-name convention, e.g. `"xy"`.
    pub fn label(self) -> &'static str {
        match self {
            RoutingKind::Xy => "xy",
            RoutingKind::Yx => "yx",
            RoutingKind::MixedXyYx => "xy-yx-mixed",
            RoutingKind::WestFirst => "west-first",
            RoutingKind::NorthLast => "north-last",
            RoutingKind::NegativeFirst => "negative-first",
            RoutingKind::MinimalAdaptive => "minimal-adaptive",
            RoutingKind::RingShortest => "shortest",
            RoutingKind::RingDateline => "dateline",
            RoutingKind::TorusDor => "dor",
            RoutingKind::TorusDorDateline => "dor-dateline",
            RoutingKind::AcrossFirst => "across-first",
            RoutingKind::AcrossFirstDateline => "across-first-dateline",
        }
    }

    /// The topology family this routing function is defined on.
    pub fn topology(self) -> TopologyKind {
        match self {
            RoutingKind::Xy
            | RoutingKind::Yx
            | RoutingKind::MixedXyYx
            | RoutingKind::WestFirst
            | RoutingKind::NorthLast
            | RoutingKind::NegativeFirst
            | RoutingKind::MinimalAdaptive => TopologyKind::Mesh,
            RoutingKind::RingShortest | RoutingKind::RingDateline => TopologyKind::Ring,
            RoutingKind::TorusDor | RoutingKind::TorusDorDateline => TopologyKind::Torus,
            RoutingKind::AcrossFirst | RoutingKind::AcrossFirstDateline => TopologyKind::Spidergon,
        }
    }

    /// Whether the function returns at most one hop per (port, destination)
    /// pair (Theorem 1 is an equivalence only then).
    pub fn is_deterministic(self) -> bool {
        !matches!(
            self,
            RoutingKind::WestFirst
                | RoutingKind::NorthLast
                | RoutingKind::NegativeFirst
                | RoutingKind::MinimalAdaptive
        )
    }

    /// Virtual channels the routing function needs on its topology (dateline
    /// schemes reserve a second channel; everything else runs on one).
    pub fn required_vcs(self) -> usize {
        match self {
            RoutingKind::RingDateline
            | RoutingKind::TorusDorDateline
            | RoutingKind::AcrossFirstDateline => 2,
            _ => 1,
        }
    }
}

/// The switching policies shipped by `genoc-switching`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SwitchingKind {
    /// The paper's `Swh`: flit-pipelined wormhole switching.
    Wormhole,
    /// Virtual cut-through: pipelined, blocked packets collapse into a port.
    VirtualCutThrough,
    /// Store-and-forward: whole-packet hop-by-hop transfer.
    StoreForward,
}

impl SwitchingKind {
    /// Every switching kind, in display order.
    pub const ALL: [SwitchingKind; 3] = [
        SwitchingKind::Wormhole,
        SwitchingKind::VirtualCutThrough,
        SwitchingKind::StoreForward,
    ];

    /// Short label, e.g. `"wormhole"`.
    pub fn label(self) -> &'static str {
        match self {
            SwitchingKind::Wormhole => "wormhole",
            SwitchingKind::VirtualCutThrough => "vct",
            SwitchingKind::StoreForward => "store-forward",
        }
    }

    /// Whether admission requires a whole packet to fit into one port buffer
    /// (so workload packet lengths must not exceed the port capacity).
    pub fn requires_whole_packet_buffering(self) -> bool {
        !matches!(self, SwitchingKind::Wormhole)
    }
}

/// Data-level identity of a concrete (topology, routing) instantiation.
///
/// `width`/`height` are the mesh/torus dimensions; rings and Spidergons use
/// `width` as their node count with `height == 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceMeta {
    /// Topology family.
    pub topology: TopologyKind,
    /// Routing function.
    pub routing: RoutingKind,
    /// Width (or node count for ring/Spidergon).
    pub width: usize,
    /// Height (1 for ring/Spidergon).
    pub height: usize,
    /// Virtual channels per affected direction (1 = no extra channels).
    pub vcs: usize,
    /// Buffer capacity per port, in flits.
    pub capacity: u32,
}

impl InstanceMeta {
    /// Builds the metadata for a routing kind on its home topology.
    pub fn new(routing: RoutingKind, width: usize, height: usize, capacity: u32) -> InstanceMeta {
        InstanceMeta {
            topology: routing.topology(),
            routing,
            width,
            height,
            vcs: routing.required_vcs(),
            capacity,
        }
    }

    /// Total node count.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// The display name the instance registry uses, e.g. `"mesh-4x4/xy"` or
    /// `"ring-6-vc2/dateline"`.
    pub fn instance_name(&self) -> String {
        let vc = if self.vcs > 1 {
            format!("-vc{}", self.vcs)
        } else {
            String::new()
        };
        let topo = match self.topology {
            TopologyKind::Mesh => format!("mesh-{}x{}", self.width, self.height),
            TopologyKind::Torus => format!("torus-{}x{}", self.width, self.height),
            TopologyKind::Ring => format!("ring-{}", self.width),
            TopologyKind::Spidergon => format!("spidergon-{}", self.width),
        };
        format!("{topo}{vc}/{}", self.routing.label())
    }

    /// Structural validity: the routing kind matches the topology, the
    /// dimensions are constructible, and the VC count covers what the
    /// routing scheme reserves.
    pub fn is_well_formed(&self) -> Result<(), String> {
        if self.routing.topology() != self.topology {
            return Err(format!(
                "routing {} is not defined on topology {}",
                self.routing.label(),
                self.topology.label()
            ));
        }
        if self.capacity == 0 {
            return Err("port capacity must be positive".into());
        }
        if self.vcs < self.routing.required_vcs() {
            return Err(format!(
                "routing {} needs {} VCs, meta has {}",
                self.routing.label(),
                self.routing.required_vcs(),
                self.vcs
            ));
        }
        match self.topology {
            TopologyKind::Mesh | TopologyKind::Torus => {
                if self.width < 2 || self.height < 2 {
                    return Err(format!(
                        "{} needs width and height of at least 2, got {}x{}",
                        self.topology.label(),
                        self.width,
                        self.height
                    ));
                }
            }
            TopologyKind::Ring => {
                if self.height != 1 || self.width < 2 {
                    return Err(format!(
                        "ring needs height 1 and at least 2 nodes, got {}x{}",
                        self.width, self.height
                    ));
                }
            }
            TopologyKind::Spidergon => {
                if self.height != 1 || self.width < 4 || !self.width.is_multiple_of(2) {
                    return Err(format!(
                        "spidergon needs height 1 and an even node count of at least 4, got {}x{}",
                        self.width, self.height
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_kinds_map_to_their_topologies() {
        for r in RoutingKind::ALL {
            assert!(TopologyKind::ALL.contains(&r.topology()), "{r:?}");
        }
        assert_eq!(RoutingKind::Xy.topology(), TopologyKind::Mesh);
        assert_eq!(RoutingKind::TorusDor.topology(), TopologyKind::Torus);
    }

    #[test]
    fn instance_names_match_registry_convention() {
        assert_eq!(
            InstanceMeta::new(RoutingKind::Xy, 4, 4, 1).instance_name(),
            "mesh-4x4/xy"
        );
        assert_eq!(
            InstanceMeta::new(RoutingKind::RingDateline, 6, 1, 1).instance_name(),
            "ring-6-vc2/dateline"
        );
        assert_eq!(
            InstanceMeta::new(RoutingKind::AcrossFirst, 12, 1, 2).instance_name(),
            "spidergon-12/across-first"
        );
    }

    #[test]
    fn well_formedness_rejects_invalid_combos() {
        assert!(InstanceMeta::new(RoutingKind::Xy, 3, 3, 1)
            .is_well_formed()
            .is_ok());
        // Mismatched topology.
        let mut m = InstanceMeta::new(RoutingKind::Xy, 3, 3, 1);
        m.topology = TopologyKind::Ring;
        assert!(m.is_well_formed().is_err());
        // Odd spidergon.
        assert!(InstanceMeta::new(RoutingKind::AcrossFirst, 7, 1, 1)
            .is_well_formed()
            .is_err());
        // Too few VCs for a dateline scheme.
        let mut d = InstanceMeta::new(RoutingKind::RingDateline, 6, 1, 1);
        d.vcs = 1;
        assert!(d.is_well_formed().is_err());
        // Zero capacity.
        assert!(InstanceMeta::new(RoutingKind::Yx, 3, 3, 0)
            .is_well_formed()
            .is_err());
    }

    #[test]
    fn whole_packet_buffering_only_off_wormhole() {
        assert!(!SwitchingKind::Wormhole.requires_whole_packet_buffering());
        assert!(SwitchingKind::VirtualCutThrough.requires_whole_packet_buffering());
        assert!(SwitchingKind::StoreForward.requires_whole_packet_buffering());
    }
}
