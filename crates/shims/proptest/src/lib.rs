//! Offline shim for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this in-tree crate
//! implements the subset of proptest the workspace uses: the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], the [`proptest!`] macro with `#![proptest_config]`,
//! and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * inputs are drawn from a deterministic per-test stream (seeded by test
//!   name and case index), so every run explores the same cases — failures
//!   are always reproducible;
//! * there is no shrinking: a failure reports the case index and the drawn
//!   inputs' debug formatting is left to the assertion message;
//! * `prop_assume!` rejections regenerate the case (up to
//!   [`MAX_REJECTS_PER_CASE`] consecutive vetoes) rather than consuming the
//!   `cases` budget, matching real proptest's effective-coverage behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The deterministic generator behind every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a stream from a test name and case index.
    pub fn deterministic(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ ((case as u64) << 32 | 0x5DEE_CE66),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as the element-count specifier of [`vec()`].
    pub trait IntoSizeRange {
        /// Lower and upper (inclusive) bounds on the collection length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec`s whose length lies in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Consecutive `prop_assume!` vetoes tolerated before a case is abandoned;
/// also the seed stride separating retry streams within one case.
pub const MAX_REJECTS_PER_CASE: u32 = 1024;

/// Per-block configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!` and should be skipped.
    Reject(String),
    /// The case genuinely failed.
    Fail(String),
}

impl TestCaseError {
    /// A genuine failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A `prop_assume!` veto carrying `message`.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }

    /// True for vetoes, false for failures.
    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Like `assert!`, but reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!`, but reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Like `assert_ne!`, but reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)+);
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Define property tests: each `fn` runs `cases` times over freshly drawn
/// inputs, with `prop_assert*` failures reported per case.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                // A `prop_assume!` veto regenerates the case from a fresh
                // stream instead of consuming the budget, so assume-heavy
                // tests still run `cases` effective cases.
                let mut rejects: u32 = 0;
                loop {
                    let mut rng = $crate::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case * $crate::MAX_REJECTS_PER_CASE + rejects,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match result {
                        ::std::result::Result::Ok(()) => break,
                        ::std::result::Result::Err(e) if e.is_reject() => {
                            rejects += 1;
                            assert!(
                                rejects < $crate::MAX_REJECTS_PER_CASE,
                                "proptest case {}/{}: {} consecutive prop_assume rejections ({})",
                                case + 1, config.cases, rejects, e
                            );
                        }
                        ::std::result::Result::Err(e) => {
                            panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e)
                        }
                    }
                }
            }
        }
    )*};
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// The glob-importable face of the shim, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 1u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in collection::vec(0u64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn maps_and_tuples_compose(p in (0usize..4, 0usize..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(p <= 6);
        }

        #[test]
        fn assume_skips(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a < b);
            prop_assert!(a < b);
        }
    }

    #[test]
    fn flat_map_generates_dependent_values() {
        let strat = (2usize..=5).prop_flat_map(|n| collection::vec(0usize..n, n));
        for case in 0..64 {
            let mut rng = TestRng::deterministic("flat_map", case);
            let v = strat.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&e| e < v.len().max(5)));
        }
    }
}
