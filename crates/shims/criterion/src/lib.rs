//! Offline shim for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this in-tree crate
//! implements the subset of the Criterion API the workspace's benches use:
//! [`Criterion::benchmark_group`]/[`Criterion::bench_function`], groups with
//! `sample_size`/`throughput`/`bench_with_input`/`finish`, [`Bencher::iter`],
//! [`black_box`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark closure is warmed up
//! briefly, then timed over `sample_size` samples, and the per-iteration
//! median is printed as
//! `group/name ... median <t> (<n> samples)`. There is no statistical
//! analysis, plotting, or HTML report — the point is that `cargo bench`
//! runs every experiment end-to-end and prints comparable numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, one per bench binary.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into().label, 10, None, |b| f(b));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare how much work one iteration performs (reported as a rate).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.into().label,
            self.sample_size,
            self.throughput,
            |b| f(b),
        );
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id.into().label,
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id: function name plus parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Work performed by one iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Times the benchmark closure handed to it by [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, collecting the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call, then calibrate iterations per sample so
        // that very fast closures are timed in batches.
        black_box(f());
        let probe = Instant::now();
        black_box(f());
        let once = probe.elapsed();
        let iters_per_sample = if once < Duration::from_micros(50) {
            (Duration::from_micros(200).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u32
        } else {
            1
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    let full = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    if bencher.samples.is_empty() {
        println!("{full:<56} (no samples — closure never called iter)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!(", {:.0} elem/s", n as f64 / median.as_secs_f64())
        }
        Throughput::Bytes(n) => format!(", {:.0} B/s", n as f64 / median.as_secs_f64()),
    });
    println!(
        "{full:<56} median {:>12?} ({} samples{})",
        median,
        bencher.samples.len(),
        rate.unwrap_or_default()
    );
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| black_box(7)));
        group.finish();
        c.bench_function("free", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_and_benchers_run() {
        let mut criterion = Criterion::default();
        demo(&mut criterion);
    }
}
