//! Offline shim for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this in-tree crate
//! implements the subset of the Criterion API the workspace's benches use:
//! [`Criterion::benchmark_group`]/[`Criterion::bench_function`], groups with
//! `sample_size`/`throughput`/`bench_with_input`/`finish`, [`Bencher::iter`],
//! [`black_box`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark closure is warmed up
//! briefly, then timed over `sample_size` samples, and the per-iteration
//! median is printed as
//! `group/name ... median <t> (<n> samples)`. There is no statistical
//! analysis, plotting, or HTML report — the point is that `cargo bench`
//! runs every experiment end-to-end and prints comparable numbers.
//!
//! For machine consumption, every bench binary additionally merges its
//! per-benchmark medians into `target/bench-results.json` (see
//! [`write_results_json`], invoked by [`criterion_main!`]), so perf
//! trajectories can be accumulated across runs and uploaded as CI
//! artifacts. Each entry carries the sample min/max next to the median, so
//! a gate reading the file can tell a stable measurement from a noisy one.
//!
//! Two knobs tune sampling without touching bench code:
//! `GENOC_BENCH_SAMPLE_FLOOR` raises every benchmark's sample count to at
//! least the given value (noisy CI runners want more samples than the
//! `sample_size(1)` a slow local sweep configures), and benches can read
//! their own recorded timings back through [`median_ns`] to derive ratio
//! metrics (e.g. a jobs-4 vs jobs-1 scaling factor) for [`record_metric`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, one per bench binary.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into().label, 10, None, |b| f(b));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare how much work one iteration performs (reported as a rate).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.into().label,
            self.sample_size,
            self.throughput,
            |b| f(b),
        );
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id.into().label,
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id: function name plus parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Work performed by one iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Times the benchmark closure handed to it by [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, collecting the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call, then calibrate iterations per sample so
        // that very fast closures are timed in batches.
        black_box(f());
        let probe = Instant::now();
        black_box(f());
        let once = probe.elapsed();
        let iters_per_sample = if once < Duration::from_micros(50) {
            (Duration::from_micros(200).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u32
        } else {
            1
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
        }
    }
}

/// One benchmark's timing summary: median, fastest and slowest sample, and
/// the sample count.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BenchEntry {
    name: String,
    median_ns: u128,
    min_ns: u128,
    max_ns: u128,
    samples: usize,
}

/// Results collected by this bench binary, for [`write_results_json`].
static RESULTS: Mutex<Vec<BenchEntry>> = Mutex::new(Vec::new());

/// The per-iteration median (in nanoseconds) this binary recorded for the
/// benchmark named `group/label`, if it ran. Lets a bench derive ratio
/// metrics from its own timings — e.g. the jobs-4 / jobs-1 scaling factor —
/// and publish them via [`record_metric`].
pub fn median_ns(name: &str) -> Option<u128> {
    RESULTS
        .lock()
        .expect("bench results poisoned")
        .iter()
        .find(|e| e.name == name)
        .map(|e| e.median_ns)
}

/// The sample floor configured via `GENOC_BENCH_SAMPLE_FLOOR`, if any:
/// every benchmark collects at least this many samples regardless of its
/// configured `sample_size`.
fn sample_floor() -> Option<usize> {
    std::env::var("GENOC_BENCH_SAMPLE_FLOOR")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Non-time observables recorded by this bench binary (counts, ratios),
/// for the `"metrics"` section of `bench-results.json`.
static METRICS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Records a non-time observable (a state count, a reduction ratio, a
/// throughput measured by the bench itself) under `name`. Metrics land in
/// the `"metrics"` section of `target/bench-results.json` next to the
/// timing medians, so CI can gate on semantic quantities the wall clock
/// cannot express. Non-finite values are ignored — JSON cannot carry them.
pub fn record_metric(name: impl Into<String>, value: f64) {
    if !value.is_finite() {
        return;
    }
    METRICS
        .lock()
        .expect("bench metrics poisoned")
        .push((name.into(), value));
}

/// Locates the Cargo `target` directory by walking up from the bench binary
/// (which lives in `<target>/release/deps/`); falls back to a relative
/// `target/` for unusual layouts.
fn target_dir() -> PathBuf {
    if let Ok(exe) = std::env::current_exe() {
        for dir in exe.ancestors() {
            if dir.file_name().is_some_and(|n| n == "target") {
                return dir.to_path_buf();
            }
        }
    }
    PathBuf::from("target")
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Merges this binary's benchmark medians into
/// `<target>/bench-results.json`, preserving entries written by other bench
/// binaries. Called automatically at the end of [`criterion_main!`]; a
/// failure to write is reported on stderr but never fails the bench run.
pub fn write_results_json() {
    let results = RESULTS.lock().expect("bench results poisoned");
    let recorded = METRICS.lock().expect("bench metrics poisoned");
    if results.is_empty() && recorded.is_empty() {
        return;
    }
    let path = target_dir().join("bench-results.json");
    // Merge with entries from previously run bench binaries: keep every
    // existing benchmark and metric this binary did not re-measure.
    let mut entries: Vec<BenchEntry> = Vec::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        entries = parse_results_json(&existing);
        metrics = parse_metrics_json(&existing);
    }
    for entry in results.iter() {
        entries.retain(|e| e.name != entry.name);
        entries.push(entry.clone());
    }
    for (name, value) in recorded.iter() {
        metrics.retain(|(n, _)| n != name);
        metrics.push((name.clone(), *value));
    }
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    metrics.sort_by(|a, b| a.0.cmp(&b.0));
    let mut json = String::from("{\n  \"benches\": {\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{}\": {{ \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"samples\": {} }}{comma}\n",
            json_escape(&e.name),
            e.median_ns,
            e.min_ns,
            e.max_ns,
            e.samples
        ));
    }
    json.push_str("  },\n  \"metrics\": {\n");
    for (i, (name, value)) in metrics.iter().enumerate() {
        let comma = if i + 1 == metrics.len() { "" } else { "," };
        json.push_str(&format!("    \"{}\": {value}{comma}\n", json_escape(name)));
    }
    json.push_str("  }\n}\n");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("bench medians written to {}", path.display());
    }
}

/// Parses the exact format emitted by [`write_results_json`] (one benchmark
/// per line); anything unrecognised is skipped. Entries written before the
/// spread fields existed fall back to `min_ns = max_ns = median_ns`.
fn parse_results_json(s: &str) -> Vec<BenchEntry> {
    let mut out = Vec::new();
    for line in s.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        // Split on the *last* occurrence of the name/value delimiter: the
        // value object never contains `": {`, while an escaped name could.
        let Some(split) = rest.rfind("\": {") else {
            continue;
        };
        let (name, rest) = (&rest[..split], &rest[split + 4..]);
        let field = |key: &str| {
            rest.split_once(&format!("\"{key}\": "))
                .map(|(_, v)| v)
                .and_then(|v| {
                    let digits: String = v.chars().take_while(char::is_ascii_digit).collect();
                    digits.parse::<u128>().ok()
                })
        };
        if let (Some(median), Some(samples)) = (field("median_ns"), field("samples")) {
            out.push(BenchEntry {
                name: name.replace("\\\"", "\"").replace("\\\\", "\\"),
                median_ns: median,
                min_ns: field("min_ns").unwrap_or(median),
                max_ns: field("max_ns").unwrap_or(median),
                samples: samples as usize,
            });
        }
    }
    out
}

/// Parses the `"metrics"` section emitted by [`write_results_json`]: one
/// `"name": value` pair per line. Bench entries (whose value is an object)
/// and anything else unrecognised are skipped.
fn parse_metrics_json(s: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in s.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some(split) = rest.rfind("\": ") else {
            continue;
        };
        let (name, value) = (&rest[..split], rest[split + 3..].trim_end_matches(','));
        if value.starts_with('{') {
            continue;
        }
        if let Ok(v) = value.parse::<f64>() {
            out.push((name.replace("\\\"", "\"").replace("\\\\", "\\"), v));
        }
    }
    out
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: sample_size.max(sample_floor().unwrap_or(1)),
    };
    f(&mut bencher);
    let full = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    if bencher.samples.is_empty() {
        println!("{full:<56} (no samples — closure never called iter)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    RESULTS
        .lock()
        .expect("bench results poisoned")
        .push(BenchEntry {
            name: full.clone(),
            median_ns: median.as_nanos(),
            min_ns: bencher.samples[0].as_nanos(),
            max_ns: bencher.samples[bencher.samples.len() - 1].as_nanos(),
            samples: bencher.samples.len(),
        });
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!(", {:.0} elem/s", n as f64 / median.as_secs_f64())
        }
        Throughput::Bytes(n) => format!(", {:.0} B/s", n as f64 / median.as_secs_f64()),
    });
    println!(
        "{full:<56} median {:>12?} ({} samples{})",
        median,
        bencher.samples.len(),
        rate.unwrap_or_default()
    );
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the named groups, then persist the medians to
/// `target/bench-results.json` (see [`write_results_json`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_results_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| black_box(7)));
        group.finish();
        c.bench_function("free", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_and_benchers_run() {
        let mut criterion = Criterion::default();
        demo(&mut criterion);
        assert!(
            RESULTS
                .lock()
                .unwrap()
                .iter()
                .any(|e| e.name == "shim/sum/64"),
            "benchmarks must register their medians"
        );
        assert!(
            median_ns("shim/sum/64").is_some(),
            "recorded medians must be readable back"
        );
        assert!(median_ns("no/such/bench").is_none());
    }

    #[test]
    fn results_json_round_trips() {
        let entry = |name: &str, median: u128, min: u128, max: u128, samples: usize| BenchEntry {
            name: name.to_string(),
            median_ns: median,
            min_ns: min,
            max_ns: max,
            samples,
        };
        let entries = vec![
            entry("a/b", 125, 100, 150, 10),
            entry("weird \"name\"", 7, 7, 9, 5),
            // A name containing the name/value delimiter itself.
            entry("tricky\": { name", 1, 1, 1, 2),
        ];
        let mut json = String::from("{\n  \"benches\": {\n");
        for (i, e) in entries.iter().enumerate() {
            let comma = if i + 1 == entries.len() { "" } else { "," };
            json.push_str(&format!(
                "    \"{}\": {{ \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"samples\": {} }}{comma}\n",
                json_escape(&e.name),
                e.median_ns,
                e.min_ns,
                e.max_ns,
                e.samples
            ));
        }
        json.push_str("  }\n}\n");
        assert_eq!(parse_results_json(&json), entries);
        assert!(
            parse_metrics_json(&json).is_empty(),
            "bench entries must not parse as metrics"
        );
    }

    #[test]
    fn results_json_without_spread_fields_still_parses() {
        let json = "{\n  \"benches\": {\n    \"old/entry\": { \"median_ns\": 42, \"samples\": 3 }\n  }\n}\n";
        let parsed = parse_results_json(json);
        assert_eq!(parsed.len(), 1);
        assert_eq!(
            (parsed[0].min_ns, parsed[0].max_ns),
            (42, 42),
            "legacy entries default the spread to the median"
        );
    }

    #[test]
    fn metrics_json_round_trips() {
        let json = concat!(
            "{\n  \"benches\": {\n",
            "    \"a/b\": { \"median_ns\": 125, \"samples\": 10 }\n",
            "  },\n  \"metrics\": {\n",
            "    \"explore/reduction\": 93.5,\n",
            "    \"explore/full_states\": 203175\n",
            "  }\n}\n"
        );
        assert_eq!(
            parse_metrics_json(json),
            vec![
                ("explore/reduction".to_string(), 93.5),
                ("explore/full_states".to_string(), 203175.0),
            ]
        );
        assert_eq!(parse_results_json(json).len(), 1, "benches still parse");
    }
}
