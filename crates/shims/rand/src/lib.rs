//! Offline shim for the `rand` crate.
//!
//! The build environment has no crates.io access, so this in-tree crate
//! provides exactly the API surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`RngExt::random_range`] over integer
//! ranges. The generator is SplitMix64 — statistically solid for workload
//! generation and fully deterministic per seed, which is all the simulation
//! layer requires (the real `rand` makes no cross-version stream guarantees
//! for `StdRng` either).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw 64-bit output interface every generator implements.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Concrete generators.
pub mod rngs {
    /// The shim's standard generator: SplitMix64.
    ///
    /// Matches the real `StdRng` contract that matters here: deterministic
    /// per seed, different seeds give (overwhelmingly) different streams.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// A range of values that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range; panics if the range is empty.
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + (rng() as $t);
                }
                start + (rng() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

/// Convenience sampling methods, mirroring `rand::Rng` / `rand::RngExt`.
pub trait RngExt: RngCore {
    /// Draw one value uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut draw = || self.next_u64();
        range.sample(&mut draw)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.random_range(0..100u32), b.random_range(0..100u32));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5u32..=9);
            assert!((5..=9).contains(&w));
        }
    }
}
