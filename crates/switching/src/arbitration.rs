//! Arbitration: the order in which a switching step serves the travels.

/// Travel service order within a switching step.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Arbitration {
    /// Travels are served in message-id order every step. Simple, but can
    /// starve high-id messages under sustained contention.
    #[default]
    FixedPriority,
    /// The starting travel rotates every step, spreading contention fairly.
    RoundRobin,
}

impl Arbitration {
    /// Short label used in policy names.
    pub fn label(self) -> &'static str {
        match self {
            Arbitration::FixedPriority => "fixed",
            Arbitration::RoundRobin => "round-robin",
        }
    }

    /// The service order for `n` travels at step `step`.
    pub fn order(self, n: usize, step: u64) -> Vec<usize> {
        match self {
            Arbitration::FixedPriority => (0..n).collect(),
            Arbitration::RoundRobin => {
                if n == 0 {
                    return Vec::new();
                }
                let start = (step % n as u64) as usize;
                (0..n).map(|i| (start + i) % n).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_priority_is_stable() {
        assert_eq!(Arbitration::FixedPriority.order(3, 0), vec![0, 1, 2]);
        assert_eq!(Arbitration::FixedPriority.order(3, 7), vec![0, 1, 2]);
    }

    #[test]
    fn round_robin_rotates() {
        assert_eq!(Arbitration::RoundRobin.order(3, 0), vec![0, 1, 2]);
        assert_eq!(Arbitration::RoundRobin.order(3, 1), vec![1, 2, 0]);
        assert_eq!(Arbitration::RoundRobin.order(3, 5), vec![2, 0, 1]);
    }

    #[test]
    fn empty_travel_list_yields_empty_order() {
        assert_eq!(Arbitration::RoundRobin.order(0, 9), Vec::<usize>::new());
    }
}
