//! Arbitration: the order in which a switching step serves the travels.
//!
//! The type itself lives in [`genoc_core::switching`] (the incremental
//! kernel consumes it too); this module re-exports it for the policies and
//! their historical import path.

pub use genoc_core::switching::Arbitration;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn re_export_is_the_core_type() {
        let order = Arbitration::RoundRobin.order(3, 1);
        assert_eq!(order, vec![1, 2, 0]);
        assert_eq!(Arbitration::FixedPriority.label(), "fixed");
        assert_eq!(Arbitration::RoundRobin.label(), "round-robin");
    }
}
