//! Store-and-forward packet switching.
//!
//! A packet is fully received in a port before it is forwarded: the header
//! may only advance when every flit of the packet sits in its current port
//! and the next port can buffer the whole packet. Latency scales with
//! `hops × flits` (no pipelining) — the baseline wormhole switching was
//! invented to beat, reproduced here for the switching-comparison ablation.

use genoc_core::config::Config;
use genoc_core::error::Result;
use genoc_core::network::Network;
use genoc_core::step::StepScratch;
use genoc_core::switching::{Arbitration, KernelSpec, StepReport, SwitchingPolicy};
use genoc_core::trace::Trace;

use crate::motion::{any_move_possible_with, step_travel_with, StoreAndForwardAdmission};

static ADMISSION: StoreAndForwardAdmission = StoreAndForwardAdmission;

/// The store-and-forward switching policy.
///
/// Every port on a packet's route must have capacity for the whole packet;
/// [`StoreForwardPolicy::workload_fits`] checks this precondition. A
/// workload that violates it wedges immediately and is reported as a
/// deadlock by the interpreter.
#[derive(Clone, Debug, Default)]
pub struct StoreForwardPolicy {
    scratch: StepScratch,
}

impl StoreForwardPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        StoreForwardPolicy::default()
    }

    /// Whether every travel of `cfg` fits into every port of its route.
    pub fn workload_fits(net: &dyn Network, cfg: &Config) -> bool {
        cfg.travels().iter().all(|t| {
            t.route()
                .iter()
                .all(|&p| net.attrs(p).capacity as usize >= t.flit_count())
        })
    }
}

impl SwitchingPolicy for StoreForwardPolicy {
    fn name(&self) -> String {
        "store-and-forward".into()
    }

    fn step(
        &mut self,
        net: &dyn Network,
        cfg: &mut Config,
        trace: &mut Trace,
    ) -> Result<StepReport> {
        self.scratch.reset(net.port_count());
        let mut total = StepReport::default();
        for i in 0..cfg.travels().len() {
            let r = step_travel_with(cfg, i, &mut self.scratch, trace, &StoreAndForwardAdmission)?;
            total.entries += r.entries;
            total.advances += r.advances;
            total.ejections += r.ejections;
        }
        Ok(total)
    }

    fn is_deadlock(&self, _net: &dyn Network, cfg: &Config) -> bool {
        !cfg.is_evacuated() && !any_move_possible_with(cfg, &StoreAndForwardAdmission)
    }

    fn kernel_spec(&self) -> Option<KernelSpec> {
        Some(KernelSpec {
            arbitration: Arbitration::FixedPriority,
            admission: &ADMISSION,
            first_step: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genoc_core::injection::IdentityInjection;
    use genoc_core::interpreter::{run, Outcome, RunOptions};
    use genoc_core::line::{LineNetwork, LineRouting};
    use genoc_core::spec::MessageSpec;
    use genoc_core::NodeId;

    fn line_run(capacity: u32, flits: usize) -> genoc_core::interpreter::RunResult {
        let net = LineNetwork::new(4, capacity);
        let routing = LineRouting::new(&net);
        let specs = [MessageSpec::new(
            NodeId::from_index(0),
            NodeId::from_index(3),
            flits,
        )];
        let cfg = Config::from_specs(&net, &routing, &specs).unwrap();
        let options = RunOptions {
            check_invariants: true,
            ..RunOptions::default()
        };
        run(
            &net,
            &IdentityInjection,
            &mut StoreForwardPolicy::new(),
            cfg,
            &options,
        )
        .unwrap()
    }

    #[test]
    fn packet_walks_hop_by_hop() {
        let r = line_run(3, 3);
        assert_eq!(r.outcome, Outcome::Evacuated);
        // Store-and-forward serialises: at least hops * flits steps.
        let hops = 7; // L-in + 3 links (out+in) = route len 8 - 1
        assert!(
            r.steps >= (hops * 3 / 2) as u64,
            "expected serialised transfer, took only {} steps",
            r.steps
        );
    }

    #[test]
    fn oversized_packet_is_a_wedge_not_a_panic() {
        let r = line_run(2, 3);
        assert_eq!(r.outcome, Outcome::Deadlock, "packet cannot fit anywhere");
    }

    #[test]
    fn workload_fits_checks_capacities() {
        let net = LineNetwork::new(3, 2);
        let routing = LineRouting::new(&net);
        let ok = Config::from_specs(
            &net,
            &routing,
            &[MessageSpec::new(
                NodeId::from_index(0),
                NodeId::from_index(2),
                2,
            )],
        )
        .unwrap();
        assert!(StoreForwardPolicy::workload_fits(&net, &ok));
        let too_big = Config::from_specs(
            &net,
            &routing,
            &[MessageSpec::new(
                NodeId::from_index(0),
                NodeId::from_index(2),
                3,
            )],
        )
        .unwrap();
        assert!(!StoreForwardPolicy::workload_fits(&net, &too_big));
    }
}
