//! # genoc-switching
//!
//! Switching policies for GeNoC-rs:
//!
//! * [`wormhole::WormholePolicy`] — the paper's `Swh`: flit-level wormhole
//!   switching with single-packet port ownership;
//! * [`virtual_cut_through::VirtualCutThroughPolicy`] — pipelined like
//!   wormhole but blocked packets collapse into one port;
//! * [`store_forward::StoreForwardPolicy`] — whole-packet hop-by-hop
//!   transfer, the unpipelined baseline;
//! * [`arbitration::Arbitration`] — fixed-priority or round-robin service
//!   order.
//!
//! All policies share the flit-motion machinery in [`motion`], which layers
//! a per-policy *head admission* predicate over the movement primitives of
//! `genoc-core`. Every policy satisfies the (C-5) contract: a step on a
//! non-deadlocked configuration moves at least one flit and strictly
//! decreases the progress measure.
//!
//! Every policy also exposes a
//! [`KernelSpec`](genoc_core::switching::KernelSpec) — its arbitration order
//! plus admission predicate — turning it into an ordering strategy over the
//! incremental [`Kernel`](genoc_core::kernel::Kernel)'s active set. Runners
//! (`genoc-sim`) execute policies through the kernel by default, with
//! move-for-move identical semantics to stepping them directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitration;
pub mod motion;
pub mod store_forward;
pub mod virtual_cut_through;
pub mod wormhole;

pub use crate::arbitration::Arbitration;
pub use crate::store_forward::StoreForwardPolicy;
pub use crate::virtual_cut_through::VirtualCutThroughPolicy;
pub use crate::wormhole::WormholePolicy;
