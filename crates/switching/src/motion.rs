//! Generalised flit motion: the wormhole step parameterised by a
//! head-admission predicate.
//!
//! All three switching policies move flits the same way — body flits follow
//! their predecessor under the ownership rules of `genoc-core` — and differ
//! only in when a *header* flit may claim the next port:
//!
//! * wormhole: whenever the port has a free buffer;
//! * virtual cut-through: only when the port could buffer the whole packet;
//! * store-and-forward: additionally, only when the whole packet has been
//!   received in the header's current port.

use genoc_core::config::Config;
use genoc_core::error::Result;
use genoc_core::step::StepScratch;
use genoc_core::switching::StepReport;
use genoc_core::trace::{Trace, Zone};
use genoc_core::travel::FlitPos;

/// Where a header flit is about to move from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HeadMove {
    /// Entry from the source IP core into `route[0]`.
    Entry,
    /// Advance from `route[k]` to `route[k + 1]`.
    Advance {
        /// Current route index of the header.
        from: usize,
    },
}

/// Extra admission condition a policy imposes on header moves, on top of the
/// core wormhole rules (free buffer, ownership).
pub trait HeadAdmission {
    /// Whether the header of travel `i` may perform `mv` in configuration
    /// `cfg`.
    fn admit(&self, cfg: &Config, i: usize, mv: HeadMove) -> bool;
}

/// Admits every header move: plain wormhole switching.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlwaysAdmit;

impl HeadAdmission for AlwaysAdmit {
    fn admit(&self, _cfg: &Config, _i: usize, _mv: HeadMove) -> bool {
        true
    }
}

fn head_target_free(cfg: &Config, i: usize, mv: HeadMove) -> u32 {
    let t = cfg.travel(i);
    let port = match mv {
        HeadMove::Entry => t.route()[0],
        HeadMove::Advance { from } => t.route()[from + 1],
    };
    cfg.state().port(port).free()
}

/// Virtual cut-through admission: the next port must have room for the whole
/// packet, so a blocked packet always collapses into a single port.
#[derive(Clone, Copy, Debug, Default)]
pub struct WholePacketRoom;

impl HeadAdmission for WholePacketRoom {
    fn admit(&self, cfg: &Config, i: usize, mv: HeadMove) -> bool {
        head_target_free(cfg, i, mv) as usize >= cfg.travel(i).flit_count()
    }
}

/// Store-and-forward admission: whole-packet room ahead *and* the packet
/// fully received in the header's current port (no cut-through).
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreAndForwardAdmission;

impl HeadAdmission for StoreAndForwardAdmission {
    fn admit(&self, cfg: &Config, i: usize, mv: HeadMove) -> bool {
        if (head_target_free(cfg, i, mv) as usize) < cfg.travel(i).flit_count() {
            return false;
        }
        match mv {
            HeadMove::Entry => true, // all flits are still at the source
            HeadMove::Advance { from } => {
                let t = cfg.travel(i);
                t.flit_positions()
                    .all(|pos| pos == FlitPos::InNetwork(from))
            }
        }
    }
}

/// Performs all admissible moves for travel `i`, head to tail, honouring the
/// per-step bandwidth flags in `scratch` and the policy's head-admission
/// predicate.
///
/// # Errors
///
/// Propagates invariant violations from the movement primitives.
pub fn step_travel_with(
    cfg: &mut Config,
    i: usize,
    scratch: &mut StepScratch,
    trace: &mut Trace,
    admission: &dyn HeadAdmission,
) -> Result<StepReport> {
    let mut report = StepReport::default();
    let flit_count = cfg.travel(i).flit_count();
    let id = cfg.travel(i).id();
    for f in 0..flit_count {
        if cfg.can_eject_flit(i, f) {
            let port = cfg.travel(i).dest();
            if scratch.may_eject(port) {
                cfg.eject_flit(i, f)?;
                scratch.mark_ejected(port);
                trace.record(id, f, Zone::Port(port), Zone::Delivered);
                report.ejections += 1;
            }
            continue;
        }
        if cfg.can_advance_flit(i, f) {
            let t = cfg.travel(i);
            let k = match t.flit_pos(f) {
                FlitPos::InNetwork(k) => k,
                _ => unreachable!("can_advance_flit implies in-network"),
            };
            if f == 0 && !admission.admit(cfg, i, HeadMove::Advance { from: k }) {
                continue;
            }
            let t = cfg.travel(i);
            let from = t.route()[k];
            let to = t.route()[k + 1];
            if scratch.may_enter(to) {
                cfg.advance_flit(i, f)?;
                scratch.mark_entered(to);
                trace.record(id, f, Zone::Port(from), Zone::Port(to));
                report.advances += 1;
            }
            continue;
        }
        if cfg.can_enter_flit(i, f) {
            if f == 0 && !admission.admit(cfg, i, HeadMove::Entry) {
                continue;
            }
            let port = cfg.travel(i).route()[0];
            if scratch.may_enter(port) {
                cfg.enter_flit(i, f)?;
                scratch.mark_entered(port);
                trace.record(id, f, Zone::Source, Zone::Port(port));
                report.entries += 1;
            }
            continue;
        }
    }
    Ok(report)
}

/// Whether any flit of any travel can move under the policy's admission
/// rules — the complement of the policy's deadlock predicate `Ω`.
pub fn any_move_possible_with(cfg: &Config, admission: &dyn HeadAdmission) -> bool {
    (0..cfg.travels().len()).any(|i| {
        let flit_count = cfg.travel(i).flit_count();
        (0..flit_count).any(|f| {
            if cfg.can_eject_flit(i, f) {
                return true;
            }
            if cfg.can_advance_flit(i, f) {
                if f > 0 {
                    return true;
                }
                let k = match cfg.travel(i).flit_pos(f) {
                    FlitPos::InNetwork(k) => k,
                    _ => unreachable!(),
                };
                return admission.admit(cfg, i, HeadMove::Advance { from: k });
            }
            if cfg.can_enter_flit(i, f) {
                return f > 0 || admission.admit(cfg, i, HeadMove::Entry);
            }
            false
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use genoc_core::line::{LineNetwork, LineRouting};
    use genoc_core::spec::MessageSpec;
    use genoc_core::NodeId;

    fn cfg(nodes: usize, capacity: u32, flits: usize) -> (LineNetwork, Config) {
        let net = LineNetwork::new(nodes, capacity);
        let routing = LineRouting::new(&net);
        let specs = [MessageSpec::new(
            NodeId::from_index(0),
            NodeId::from_index(nodes - 1),
            flits,
        )];
        let c = Config::from_specs(&net, &routing, &specs).unwrap();
        (net, c)
    }

    #[test]
    fn vct_blocks_entry_without_whole_packet_room() {
        let (_, c) = cfg(3, 2, 3);
        assert!(
            !any_move_possible_with(&c, &WholePacketRoom),
            "3 flits, 2 buffers"
        );
        let (_, c) = cfg(3, 4, 3);
        assert!(any_move_possible_with(&c, &WholePacketRoom));
    }

    #[test]
    fn saf_requires_co_location_before_advancing() {
        let (net, mut c) = cfg(3, 3, 2);
        c.enter_flit(0, 0).unwrap();
        // Head in, body still pending: head may not advance under SAF.
        assert!(!StoreAndForwardAdmission.admit(&c, 0, HeadMove::Advance { from: 0 }));
        c.enter_flit(0, 1).unwrap();
        assert!(StoreAndForwardAdmission.admit(&c, 0, HeadMove::Advance { from: 0 }));
        c.validate(&net).unwrap();
    }

    #[test]
    fn always_admit_matches_core_predicate() {
        let (_, c) = cfg(4, 1, 2);
        assert_eq!(
            any_move_possible_with(&c, &AlwaysAdmit),
            c.any_move_possible()
        );
    }
}
