//! Policy-specific head-admission predicates, layered over the generalised
//! flit motion of `genoc-core`.
//!
//! All three switching policies move flits the same way — body flits follow
//! their predecessor under the ownership rules of `genoc-core` — and differ
//! only in when a *header* flit may claim the next port:
//!
//! * wormhole: whenever the port has a free buffer ([`AlwaysAdmit`]);
//! * virtual cut-through: only when the port could buffer the whole packet
//!   ([`WholePacketRoom`]);
//! * store-and-forward: additionally, only when the whole packet has been
//!   received in the header's current port ([`StoreAndForwardAdmission`]).
//!
//! The motion machinery itself ([`step_travel_with`],
//! [`any_move_possible_with`], the [`HeadAdmission`] trait) lives in
//! [`genoc_core::step`] so that the incremental
//! [`Kernel`](genoc_core::kernel::Kernel) can drive the exact same moves;
//! this module re-exports it and contributes the two non-trivial admission
//! predicates.

pub use genoc_core::step::{
    any_move_possible_with, step_travel_with, AdmissionKind, AlwaysAdmit, HeadAdmission, HeadMove,
};

use genoc_core::config::Config;
use genoc_core::travel::FlitPos;

fn head_target_free(cfg: &Config, i: usize, mv: HeadMove) -> u32 {
    let t = cfg.travel(i);
    let port = match mv {
        HeadMove::Entry => t.route()[0],
        HeadMove::Advance { from } => t.route()[from + 1],
    };
    cfg.state().port(port).free()
}

/// Virtual cut-through admission: the next port must have room for the whole
/// packet, so a blocked packet always collapses into a single port.
#[derive(Clone, Copy, Debug, Default)]
pub struct WholePacketRoom;

impl HeadAdmission for WholePacketRoom {
    fn admit(&self, cfg: &Config, i: usize, mv: HeadMove) -> bool {
        head_target_free(cfg, i, mv) as usize >= cfg.travel(i).flit_count()
    }

    fn kind(&self) -> Option<AdmissionKind> {
        Some(AdmissionKind::WholePacketRoom)
    }
}

/// Store-and-forward admission: whole-packet room ahead *and* the packet
/// fully received in the header's current port (no cut-through).
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreAndForwardAdmission;

impl HeadAdmission for StoreAndForwardAdmission {
    fn admit(&self, cfg: &Config, i: usize, mv: HeadMove) -> bool {
        if (head_target_free(cfg, i, mv) as usize) < cfg.travel(i).flit_count() {
            return false;
        }
        match mv {
            HeadMove::Entry => true, // all flits are still at the source
            HeadMove::Advance { from } => {
                let t = cfg.travel(i);
                t.flit_positions()
                    .all(|pos| pos == FlitPos::InNetwork(from))
            }
        }
    }

    fn kind(&self) -> Option<AdmissionKind> {
        Some(AdmissionKind::StoreAndForward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genoc_core::line::{LineNetwork, LineRouting};
    use genoc_core::spec::MessageSpec;
    use genoc_core::NodeId;

    fn cfg(nodes: usize, capacity: u32, flits: usize) -> (LineNetwork, Config) {
        let net = LineNetwork::new(nodes, capacity);
        let routing = LineRouting::new(&net);
        let specs = [MessageSpec::new(
            NodeId::from_index(0),
            NodeId::from_index(nodes - 1),
            flits,
        )];
        let c = Config::from_specs(&net, &routing, &specs).unwrap();
        (net, c)
    }

    #[test]
    fn vct_blocks_entry_without_whole_packet_room() {
        let (_, c) = cfg(3, 2, 3);
        assert!(
            !any_move_possible_with(&c, &WholePacketRoom),
            "3 flits, 2 buffers"
        );
        let (_, c) = cfg(3, 4, 3);
        assert!(any_move_possible_with(&c, &WholePacketRoom));
    }

    #[test]
    fn saf_requires_co_location_before_advancing() {
        let (net, mut c) = cfg(3, 3, 2);
        c.enter_flit(0, 0).unwrap();
        // Head in, body still pending: head may not advance under SAF.
        assert!(!StoreAndForwardAdmission.admit(&c, 0, HeadMove::Advance { from: 0 }));
        c.enter_flit(0, 1).unwrap();
        assert!(StoreAndForwardAdmission.admit(&c, 0, HeadMove::Advance { from: 0 }));
        c.validate(&net).unwrap();
    }

    #[test]
    fn always_admit_matches_core_predicate() {
        let (_, c) = cfg(4, 1, 2);
        assert_eq!(
            any_move_possible_with(&c, &AlwaysAdmit),
            c.any_move_possible()
        );
    }
}
