//! Wormhole switching `Swh` — the policy of the paper (after Borrione et
//! al.'s executable specification).
//!
//! Messages are decomposed into flits; the header claims one port after
//! another (a port accepts flits of at most one packet), body flits follow in
//! pipeline, and ownership of a port is released when the tail passes. Each
//! switching step advances every message that can make progression by at
//! most one hop.

use genoc_core::config::Config;
use genoc_core::error::Result;
use genoc_core::network::Network;
use genoc_core::step::StepScratch;
use genoc_core::switching::{KernelSpec, StepReport, SwitchingPolicy};
use genoc_core::trace::Trace;

use crate::arbitration::Arbitration;
use crate::motion::{any_move_possible_with, step_travel_with, AlwaysAdmit};

static ADMISSION: AlwaysAdmit = AlwaysAdmit;

/// The wormhole switching policy.
///
/// # Examples
///
/// ```
/// use genoc_core::config::Config;
/// use genoc_core::injection::IdentityInjection;
/// use genoc_core::interpreter::{run, Outcome, RunOptions};
/// use genoc_core::spec::MessageSpec;
/// use genoc_switching::wormhole::WormholePolicy;
/// use genoc_topology::mesh::Mesh;
/// use genoc_routing::xy::XyRouting;
///
/// # fn main() -> Result<(), genoc_core::Error> {
/// let mesh = Mesh::new(3, 3, 1);
/// let routing = XyRouting::new(&mesh);
/// let specs = [MessageSpec::new(mesh.node(0, 0), mesh.node(2, 2), 4)];
/// let cfg = Config::from_specs(&mesh, &routing, &specs)?;
/// let mut policy = WormholePolicy::default();
/// let result = run(&mesh, &IdentityInjection, &mut policy, cfg, &RunOptions::default())?;
/// assert_eq!(result.outcome, Outcome::Evacuated);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct WormholePolicy {
    arbitration: Arbitration,
    scratch: StepScratch,
    step_count: u64,
}

impl WormholePolicy {
    /// Creates a wormhole policy with the given arbitration scheme.
    pub fn new(arbitration: Arbitration) -> Self {
        WormholePolicy {
            arbitration,
            scratch: StepScratch::default(),
            step_count: 0,
        }
    }

    /// The arbitration scheme in force.
    pub fn arbitration(&self) -> Arbitration {
        self.arbitration
    }
}

impl SwitchingPolicy for WormholePolicy {
    fn name(&self) -> String {
        format!("wormhole/{}", self.arbitration.label())
    }

    fn step(
        &mut self,
        net: &dyn Network,
        cfg: &mut Config,
        trace: &mut Trace,
    ) -> Result<StepReport> {
        self.scratch.reset(net.port_count());
        let order = self.arbitration.order(cfg.travels().len(), self.step_count);
        self.step_count += 1;
        let mut total = StepReport::default();
        for i in order {
            let r = step_travel_with(cfg, i, &mut self.scratch, trace, &AlwaysAdmit)?;
            total.entries += r.entries;
            total.advances += r.advances;
            total.ejections += r.ejections;
        }
        Ok(total)
    }

    fn is_deadlock(&self, _net: &dyn Network, cfg: &Config) -> bool {
        !cfg.is_evacuated() && !any_move_possible_with(cfg, &AlwaysAdmit)
    }

    fn kernel_spec(&self) -> Option<KernelSpec> {
        Some(KernelSpec {
            arbitration: self.arbitration,
            admission: &ADMISSION,
            first_step: self.step_count,
        })
    }

    fn note_kernel_steps(&mut self, steps: u64) {
        self.step_count += steps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genoc_core::injection::IdentityInjection;
    use genoc_core::interpreter::{run, Outcome, RunOptions};
    use genoc_core::spec::MessageSpec;
    use genoc_routing::xy::XyRouting;
    use genoc_topology::mesh::Mesh;

    fn run_mesh(
        specs: &[MessageSpec],
        arbitration: Arbitration,
    ) -> genoc_core::interpreter::RunResult {
        let mesh = Mesh::new(3, 3, 2);
        let routing = XyRouting::new(&mesh);
        let cfg = Config::from_specs(&mesh, &routing, specs).unwrap();
        let options = RunOptions {
            check_invariants: true,
            ..RunOptions::default()
        };
        run(
            &mesh,
            &IdentityInjection,
            &mut WormholePolicy::new(arbitration),
            cfg,
            &options,
        )
        .unwrap()
    }

    #[test]
    fn crossing_workload_evacuates_under_both_arbitrations() {
        let mesh = Mesh::new(3, 3, 2);
        let mut specs = Vec::new();
        for n in mesh.nodes() {
            let (x, y) = mesh.node_coords(n);
            specs.push(MessageSpec::new(n, mesh.node(2 - x, 2 - y), 3));
        }
        for arb in [Arbitration::FixedPriority, Arbitration::RoundRobin] {
            let r = run_mesh(&specs, arb);
            assert_eq!(r.outcome, Outcome::Evacuated, "{arb:?}");
            assert_eq!(r.config.arrived().len(), specs.len());
        }
    }

    #[test]
    fn single_long_worm_pipelines() {
        let mesh = Mesh::new(3, 3, 1);
        let routing = XyRouting::new(&mesh);
        let specs = [MessageSpec::new(mesh.node(0, 0), mesh.node(2, 2), 8)];
        let cfg = Config::from_specs(&mesh, &routing, &specs).unwrap();
        let r = run(
            &mesh,
            &IdentityInjection,
            &mut WormholePolicy::default(),
            cfg,
            &RunOptions::default(),
        )
        .unwrap();
        assert_eq!(r.outcome, Outcome::Evacuated);
        // Pipelining: steps ~ hops + flits, far below hops * flits.
        let hops = 2 * 4 + 1;
        assert!(r.steps <= (hops + 8 + 2) as u64, "steps = {}", r.steps);
    }

    #[test]
    fn policy_reports_its_name() {
        assert_eq!(WormholePolicy::default().name(), "wormhole/fixed");
        assert_eq!(
            WormholePolicy::new(Arbitration::RoundRobin).name(),
            "wormhole/round-robin"
        );
    }
}
