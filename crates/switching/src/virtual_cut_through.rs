//! Virtual cut-through switching.
//!
//! Flits pipeline as under wormhole switching, but the header only claims a
//! port that could buffer the *entire* packet — so a blocked packet always
//! collapses into a single port instead of holding a chain of them. This
//! trades buffer space for much weaker coupling between blocked packets
//! (deadlock cycles need whole-packet buffers to fill).

use genoc_core::config::Config;
use genoc_core::error::Result;
use genoc_core::network::Network;
use genoc_core::step::StepScratch;
use genoc_core::switching::{Arbitration, KernelSpec, StepReport, SwitchingPolicy};
use genoc_core::trace::Trace;

use crate::motion::{any_move_possible_with, step_travel_with, WholePacketRoom};

static ADMISSION: WholePacketRoom = WholePacketRoom;

/// The virtual cut-through switching policy.
///
/// As for store-and-forward, every port on a packet's route needs capacity
/// for the whole packet ([`VirtualCutThroughPolicy::workload_fits`]).
#[derive(Clone, Debug, Default)]
pub struct VirtualCutThroughPolicy {
    scratch: StepScratch,
}

impl VirtualCutThroughPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        VirtualCutThroughPolicy::default()
    }

    /// Whether every travel of `cfg` fits into every port of its route.
    pub fn workload_fits(net: &dyn Network, cfg: &Config) -> bool {
        cfg.travels().iter().all(|t| {
            t.route()
                .iter()
                .all(|&p| net.attrs(p).capacity as usize >= t.flit_count())
        })
    }
}

impl SwitchingPolicy for VirtualCutThroughPolicy {
    fn name(&self) -> String {
        "virtual-cut-through".into()
    }

    fn step(
        &mut self,
        net: &dyn Network,
        cfg: &mut Config,
        trace: &mut Trace,
    ) -> Result<StepReport> {
        self.scratch.reset(net.port_count());
        let mut total = StepReport::default();
        for i in 0..cfg.travels().len() {
            let r = step_travel_with(cfg, i, &mut self.scratch, trace, &WholePacketRoom)?;
            total.entries += r.entries;
            total.advances += r.advances;
            total.ejections += r.ejections;
        }
        Ok(total)
    }

    fn is_deadlock(&self, _net: &dyn Network, cfg: &Config) -> bool {
        !cfg.is_evacuated() && !any_move_possible_with(cfg, &WholePacketRoom)
    }

    fn kernel_spec(&self) -> Option<KernelSpec> {
        Some(KernelSpec {
            arbitration: Arbitration::FixedPriority,
            admission: &ADMISSION,
            first_step: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store_forward::StoreForwardPolicy;
    use crate::wormhole::WormholePolicy;
    use genoc_core::injection::IdentityInjection;
    use genoc_core::interpreter::{run, Outcome, RunOptions};
    use genoc_core::line::{LineNetwork, LineRouting};
    use genoc_core::spec::MessageSpec;
    use genoc_core::switching::SwitchingPolicy;
    use genoc_core::NodeId;

    fn steps_with(policy: &mut dyn SwitchingPolicy) -> u64 {
        let net = LineNetwork::new(5, 4);
        let routing = LineRouting::new(&net);
        let specs = [MessageSpec::new(
            NodeId::from_index(0),
            NodeId::from_index(4),
            4,
        )];
        let cfg = Config::from_specs(&net, &routing, &specs).unwrap();
        let r = run(
            &net,
            &IdentityInjection,
            policy,
            cfg,
            &RunOptions::default(),
        )
        .unwrap();
        assert_eq!(r.outcome, Outcome::Evacuated);
        r.steps
    }

    #[test]
    fn vct_pipelines_like_wormhole_and_beats_store_and_forward() {
        let wormhole = steps_with(&mut WormholePolicy::default());
        let vct = steps_with(&mut VirtualCutThroughPolicy::new());
        let saf = steps_with(&mut StoreForwardPolicy::new());
        assert_eq!(
            vct, wormhole,
            "with ample buffers VCT pipelines identically"
        );
        assert!(saf > vct, "store-and-forward serialises: {saf} <= {vct}");
    }

    #[test]
    fn vct_refuses_ports_smaller_than_the_packet() {
        let net = LineNetwork::new(3, 2);
        let routing = LineRouting::new(&net);
        let specs = [MessageSpec::new(
            NodeId::from_index(0),
            NodeId::from_index(2),
            3,
        )];
        let cfg = Config::from_specs(&net, &routing, &specs).unwrap();
        let r = run(
            &net,
            &IdentityInjection,
            &mut VirtualCutThroughPolicy::new(),
            cfg,
            &RunOptions::default(),
        )
        .unwrap();
        assert_eq!(r.outcome, Outcome::Deadlock);
    }
}
