//! Facade smoke test: the quickstart paths end to end through `genoc::prelude`.
//!
//! Two flavours, mirroring the two doc examples:
//!
//! * the `genoc-core` line-network example (4-node line, two crossing
//!   messages, `check_evacuation`), exactly as the crate-level docs show it;
//! * the mesh quickstart (`examples/quickstart.rs`): obligations (C-1)…(C-5),
//!   acyclic dependency graph, and a traced run with all three theorems.

use genoc::prelude::*;
use genoc_core::line::{LineNetwork, LineRouting, LineSwitching};

#[test]
fn line_network_two_messages_evacuate() {
    let net = LineNetwork::new(4, 1);
    let routing = LineRouting::new(&net);
    let specs = [
        MessageSpec::new(NodeId::from_index(0), NodeId::from_index(3), 3),
        MessageSpec::new(NodeId::from_index(3), NodeId::from_index(0), 3),
    ];
    let cfg = Config::from_specs(&net, &routing, &specs).expect("valid line workload");
    let injected: Vec<MsgId> = cfg.travels().iter().map(|t| t.id()).collect();
    let result = run(
        &net,
        &IdentityInjection,
        &mut LineSwitching::default(),
        cfg,
        &RunOptions::default(),
    )
    .expect("line run succeeds");
    assert_eq!(result.outcome, Outcome::Evacuated);
    let evac = check_evacuation(&injected, &result);
    assert!(evac.holds, "missing {:?}", evac.missing);
}

#[test]
fn mesh_quickstart_path_end_to_end() {
    let mesh = Mesh::new(3, 3, 2);
    let routing = XyRouting::new(&mesh);

    let instance = Instance::mesh_xy(3, 3, 2);
    for report in check_all(&instance) {
        assert!(report.holds(), "obligation failed: {report}");
    }

    let graph = port_dependency_graph(&mesh, &routing);
    assert!(
        find_cycle(&graph).is_none(),
        "XY mesh graph must be acyclic"
    );

    let specs = [
        MessageSpec::new(mesh.node(0, 0), mesh.node(2, 2), 4),
        MessageSpec::new(mesh.node(2, 2), mesh.node(0, 0), 4),
        MessageSpec::new(mesh.node(1, 1), mesh.node(1, 1), 1),
    ];
    let cfg = Config::from_specs(&mesh, &routing, &specs).expect("valid mesh workload");
    let injected: Vec<MsgId> = cfg.travels().iter().map(|t| t.id()).collect();
    let options = RunOptions {
        record_trace: true,
        record_measures: true,
        ..RunOptions::default()
    };
    let result = run(
        &mesh,
        &IdentityInjection,
        &mut WormholePolicy::default(),
        cfg,
        &options,
    )
    .expect("mesh run succeeds");

    assert_eq!(result.outcome, Outcome::Evacuated);
    assert!(check_evacuation(&injected, &result).holds);
    let corr = check_correctness(&mesh, &routing, &specs, &result);
    assert!(corr.holds());
    assert_eq!(corr.messages_checked, specs.len());

    // The progress measure strictly decreases along the recorded run.
    for w in result.measures.windows(2) {
        assert!(w[1].1 < w[0].1, "progress measure must strictly decrease");
    }
}
