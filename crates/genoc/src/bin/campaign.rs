//! The campaign CLI: expand a scenario matrix, shard it across worker
//! threads, write `target/campaign.json`, and print a markdown summary.
//!
//! ```text
//! cargo run --release -p genoc --bin campaign -- [FLAGS]
//!
//!   --matrix <smoke|default|full|large|oracle>  preset to expand   [default: default]
//!   --jobs <N>                      worker threads, 0=auto  [default: 0]
//!   --seed <N>                      campaign seed           [default: 0]
//!   --filter <substring>            keep scenarios whose name contains this
//!   --out <path>                    JSON path  [default: target/campaign.json]
//!   --wal-dir <dir>                 record a per-scenario event WAL into this directory
//!   --metrics-out <path>            write a Prometheus text metrics snapshot
//!   --stepper <kernel|legacy|arena> step engine for simulated checks [default: kernel]
//!   --list                          print scenario names and exit
//! ```
//!
//! Exit status is non-zero when any scenario fails, so CI can gate on it.

use std::path::PathBuf;
use std::process::ExitCode;

use genoc::prelude::*;

struct Args {
    matrix: String,
    jobs: usize,
    seed: u64,
    filter: Option<String>,
    out: PathBuf,
    wal_dir: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    stepper: Option<Stepper>,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        matrix: "default".into(),
        jobs: 0,
        seed: 0,
        filter: None,
        out: PathBuf::from("target/campaign.json"),
        wal_dir: None,
        metrics_out: None,
        stepper: None,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--matrix" => args.matrix = value("--matrix")?,
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--filter" => args.filter = Some(value("--filter")?),
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--wal-dir" => args.wal_dir = Some(PathBuf::from(value("--wal-dir")?)),
            "--metrics-out" => args.metrics_out = Some(PathBuf::from(value("--metrics-out")?)),
            "--stepper" => {
                args.stepper = Some(match value("--stepper")?.as_str() {
                    "kernel" => Stepper::Kernel,
                    "legacy" => Stepper::Legacy,
                    "arena" => Stepper::Arena,
                    other => {
                        return Err(format!(
                        "--stepper: unknown engine {other:?} (expected kernel, legacy, or arena)"
                    ))
                    }
                });
            }
            "--list" => args.list = true,
            "--help" | "-h" => {
                return Err(
                    "usage: campaign [--matrix smoke|default|full|large|oracle] [--jobs N] \
                            [--seed N] [--filter SUBSTRING] [--out PATH] [--wal-dir DIR] \
                            [--metrics-out PATH] [--stepper kernel|legacy|arena] [--list]"
                        .into(),
                );
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

/// Campaign-level aggregates plus per-scenario labeled samples, in the
/// Prometheus text exposition format.
fn metrics_snapshot(report: &CampaignReport) -> MetricsRegistry {
    use genoc::obs::MetricKind;

    let mut reg = MetricsRegistry::new();
    reg.declare(
        "genoc_campaign_scenarios_total",
        MetricKind::Gauge,
        "Scenarios executed by the campaign",
    );
    reg.declare(
        "genoc_campaign_failed_total",
        MetricKind::Gauge,
        "Scenarios with at least one failed check",
    );
    reg.declare(
        "genoc_campaign_deadlocks_seen_total",
        MetricKind::Gauge,
        "Live deadlocks observed across hunts, evacuation runs, and sweeps",
    );
    reg.declare(
        "genoc_campaign_wall_seconds",
        MetricKind::Gauge,
        "Wall-clock seconds for the whole campaign",
    );
    reg.set("genoc_campaign_scenarios_total", &[], report.total() as f64);
    reg.set("genoc_campaign_failed_total", &[], report.failed() as f64);
    reg.set(
        "genoc_campaign_deadlocks_seen_total",
        &[],
        report.deadlocks_seen() as f64,
    );
    reg.set("genoc_campaign_wall_seconds", &[], report.wall_ms / 1e3);

    reg.declare(
        "genoc_scenario_steps",
        MetricKind::Gauge,
        "Switching steps of the scenario's instrumented probe run",
    );
    reg.declare(
        "genoc_scenario_flits_per_sec",
        MetricKind::Gauge,
        "Delivered flits per wall-clock second of the probe run",
    );
    reg.declare(
        "genoc_scenario_blocked_peak",
        MetricKind::Gauge,
        "Peak number of simultaneously blocked travels",
    );
    reg.declare(
        "genoc_scenario_detector_first_step",
        MetricKind::Gauge,
        "Step of the first exact-detector firing (absent when none)",
    );
    reg.declare(
        "genoc_scenario_detection_latency_steps",
        MetricKind::Gauge,
        "Heuristic-vs-exact detection latency in steps",
    );
    reg.declare(
        "genoc_scenario_wal_bytes",
        MetricKind::Gauge,
        "Bytes written to the scenario's event WAL",
    );
    reg.declare(
        "genoc_scenario_wal_records",
        MetricKind::Gauge,
        "Records written to the scenario's event WAL",
    );
    for o in &report.outcomes {
        let Some(m) = &o.metrics else { continue };
        let labels = [("scenario", o.name.as_str())];
        reg.set("genoc_scenario_steps", &labels, m.steps as f64);
        reg.set("genoc_scenario_flits_per_sec", &labels, m.flits_per_sec);
        reg.set(
            "genoc_scenario_blocked_peak",
            &labels,
            m.blocked_peak as f64,
        );
        if let Some(step) = m.detector_first_step {
            reg.set("genoc_scenario_detector_first_step", &labels, step as f64);
        }
        if let Some(lat) = m.detection_latency {
            reg.set(
                "genoc_scenario_detection_latency_steps",
                &labels,
                lat as f64,
            );
        }
        reg.set("genoc_scenario_wal_bytes", &labels, m.wal_bytes as f64);
        reg.set("genoc_scenario_wal_records", &labels, m.wal_records as f64);
    }
    reg
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let Some(matrix) = ScenarioMatrix::named(&args.matrix) else {
        eprintln!(
            "unknown matrix {:?}: expected smoke, default, full, large, or oracle",
            args.matrix
        );
        return ExitCode::FAILURE;
    };
    let expansion = matrix.expand_with_stats();
    let mut scenarios = expansion.scenarios;
    if let Some(filter) = &args.filter {
        scenarios.retain(|s| s.name().contains(filter.as_str()));
    }
    eprintln!(
        "matrix {:?}: {} scenarios ({} candidates, {} invalid dropped{})",
        args.matrix,
        scenarios.len(),
        expansion.candidates,
        expansion.invalid,
        match &args.filter {
            Some(f) => format!(", filter {f:?}"),
            None => String::new(),
        }
    );
    if args.list {
        for s in &scenarios {
            println!("{}", s.name());
        }
        return ExitCode::SUCCESS;
    }
    if scenarios.is_empty() {
        eprintln!("nothing to run");
        return ExitCode::FAILURE;
    }

    let options = CampaignOptions {
        jobs: args.jobs,
        seed: args.seed,
        effort: {
            let mut effort = match args.matrix.as_str() {
                "smoke" => EffortProfile::quick(),
                "large" => EffortProfile::large(),
                "oracle" => EffortProfile::oracle(),
                _ => EffortProfile::standard(),
            };
            if let Some(stepper) = args.stepper {
                effort.stepper = stepper;
            }
            effort
        },
        matrix: args.matrix.clone(),
        wal_dir: args.wal_dir.clone(),
    };
    eprintln!("running on {} worker thread(s)…", options.effective_jobs());
    let report = run_campaign(&scenarios, &options);

    if let Err(e) = report.write_json(&args.out) {
        eprintln!("cannot write {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    if let Some(path) = &args.metrics_out {
        let reg = metrics_snapshot(&report);
        if let Err(e) = reg.write(path) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("metrics snapshot: {}", path.display());
    }
    if let Some(dir) = &args.wal_dir {
        println!("per-scenario WALs: {}", dir.display());
    }
    println!("{}", report.render_markdown());
    println!("JSON report: {}", args.out.display());
    if report.all_passed() {
        ExitCode::SUCCESS
    } else {
        eprintln!("{} scenario(s) failed", report.failed());
        ExitCode::FAILURE
    }
}
