//! The campaign CLI: expand a scenario matrix, shard it across worker
//! threads, write `target/campaign.json`, and print a markdown summary.
//!
//! ```text
//! cargo run --release -p genoc --bin campaign -- [FLAGS]
//!
//!   --matrix <smoke|default|full|large|oracle>  preset to expand   [default: default]
//!   --jobs <N>                      worker threads, 0=auto  [default: 0]
//!   --seed <N>                      campaign seed           [default: 0]
//!   --filter <substring>            keep scenarios whose name contains this
//!   --out <path>                    JSON path  [default: target/campaign.json]
//!   --list                          print scenario names and exit
//! ```
//!
//! Exit status is non-zero when any scenario fails, so CI can gate on it.

use std::path::PathBuf;
use std::process::ExitCode;

use genoc::prelude::*;

struct Args {
    matrix: String,
    jobs: usize,
    seed: u64,
    filter: Option<String>,
    out: PathBuf,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        matrix: "default".into(),
        jobs: 0,
        seed: 0,
        filter: None,
        out: PathBuf::from("target/campaign.json"),
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--matrix" => args.matrix = value("--matrix")?,
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--filter" => args.filter = Some(value("--filter")?),
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--list" => args.list = true,
            "--help" | "-h" => {
                return Err(
                    "usage: campaign [--matrix smoke|default|full|large|oracle] [--jobs N] \
                            [--seed N] [--filter SUBSTRING] [--out PATH] [--list]"
                        .into(),
                );
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let Some(matrix) = ScenarioMatrix::named(&args.matrix) else {
        eprintln!(
            "unknown matrix {:?}: expected smoke, default, full, large, or oracle",
            args.matrix
        );
        return ExitCode::FAILURE;
    };
    let expansion = matrix.expand_with_stats();
    let mut scenarios = expansion.scenarios;
    if let Some(filter) = &args.filter {
        scenarios.retain(|s| s.name().contains(filter.as_str()));
    }
    eprintln!(
        "matrix {:?}: {} scenarios ({} candidates, {} invalid dropped{})",
        args.matrix,
        scenarios.len(),
        expansion.candidates,
        expansion.invalid,
        match &args.filter {
            Some(f) => format!(", filter {f:?}"),
            None => String::new(),
        }
    );
    if args.list {
        for s in &scenarios {
            println!("{}", s.name());
        }
        return ExitCode::SUCCESS;
    }
    if scenarios.is_empty() {
        eprintln!("nothing to run");
        return ExitCode::FAILURE;
    }

    let options = CampaignOptions {
        jobs: args.jobs,
        seed: args.seed,
        effort: match args.matrix.as_str() {
            "smoke" => EffortProfile::quick(),
            "large" => EffortProfile::large(),
            "oracle" => EffortProfile::oracle(),
            _ => EffortProfile::standard(),
        },
        matrix: args.matrix.clone(),
    };
    eprintln!("running on {} worker thread(s)…", options.effective_jobs());
    let report = run_campaign(&scenarios, &options);

    if let Err(e) = report.write_json(&args.out) {
        eprintln!("cannot write {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!("{}", report.render_markdown());
    println!("JSON report: {}", args.out.display());
    if report.all_passed() {
        ExitCode::SUCCESS
    } else {
        eprintln!("{} scenario(s) failed", report.failed());
        ExitCode::FAILURE
    }
}
