//! The replay CLI: reconstruct any step of a recorded run from its event
//! WAL and print a deadlock post-mortem — the last K events before the
//! cycle closed — without re-running anything.
//!
//! ```text
//! cargo run --release -p genoc --bin replay -- --wal <FILE> [FLAGS]
//!
//!   --wal <file>       the event WAL to replay (required)
//!   --to-step <N>      reconstruct the state after N steps [default: the whole run]
//!   --last <K>         print the last K evidence events     [default: 12, 0 hides]
//!   --metrics          print a Prometheus-format summary of the log
//!   --expect <what>    evacuated|deadlock|steplimit|recorded — verify and gate
//! ```
//!
//! `--expect deadlock` additionally requires the replayed final state to
//! contain a wait-for cycle (the detector's evidence, re-derived from the
//! reconstructed configuration alone). Exit status is non-zero on damage,
//! replay failure, or an `--expect` mismatch, so CI can gate on it.

use std::path::PathBuf;
use std::process::ExitCode;

use genoc::obs::MetricKind;
use genoc::prelude::*;
use genoc::verif::Instance;

struct Args {
    wal: PathBuf,
    to_step: Option<u64>,
    last: usize,
    metrics: bool,
    expect: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut wal = None;
    let mut args = Args {
        wal: PathBuf::new(),
        to_step: None,
        last: 12,
        metrics: false,
        expect: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--wal" => wal = Some(PathBuf::from(value("--wal")?)),
            "--to-step" => {
                args.to_step = Some(
                    value("--to-step")?
                        .parse()
                        .map_err(|e| format!("--to-step: {e}"))?,
                );
            }
            "--last" => {
                args.last = value("--last")?
                    .parse()
                    .map_err(|e| format!("--last: {e}"))?;
            }
            "--metrics" => args.metrics = true,
            "--expect" => args.expect = Some(value("--expect")?),
            "--help" | "-h" => {
                return Err(
                    "usage: replay --wal FILE [--to-step N] [--last K] [--metrics] \
                            [--expect evacuated|deadlock|steplimit|recorded]"
                        .into(),
                );
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    args.wal = wal.ok_or("--wal is required (try --help)")?;
    Ok(args)
}

fn log_metrics(log: &WalLog, replayed: &Config, steps: u64) -> String {
    let mut reg = MetricsRegistry::new();
    reg.declare(
        "genoc_replay_records_total",
        MetricKind::Gauge,
        "Records decoded from the WAL",
    );
    reg.declare(
        "genoc_replay_steps",
        MetricKind::Gauge,
        "Steps the reconstruction covers",
    );
    reg.declare(
        "genoc_replay_detections_total",
        MetricKind::Gauge,
        "Detector firings recorded in the log",
    );
    reg.declare(
        "genoc_replay_inflight",
        MetricKind::Gauge,
        "Travels still in flight at the reconstructed step",
    );
    reg.declare(
        "genoc_replay_arrived",
        MetricKind::Gauge,
        "Messages fully arrived at the reconstructed step",
    );
    reg.declare(
        "genoc_replay_delivered_flits",
        MetricKind::Gauge,
        "Flits delivered at the reconstructed step",
    );
    let detections = log
        .events
        .iter()
        .filter(|e| matches!(e, WalEvent::Detection { .. }))
        .count();
    reg.set("genoc_replay_records_total", &[], log.events.len() as f64);
    reg.set("genoc_replay_steps", &[], steps as f64);
    reg.set("genoc_replay_detections_total", &[], detections as f64);
    reg.set(
        "genoc_replay_inflight",
        &[],
        replayed.travels().len() as f64,
    );
    reg.set("genoc_replay_arrived", &[], replayed.arrived().len() as f64);
    reg.set(
        "genoc_replay_delivered_flits",
        &[],
        replayed.delivered_flits() as f64,
    );
    reg.render()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let log = match genoc::obs::read_wal(&args.wal) {
        Ok(log) => log,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.wal.display());
            return ExitCode::FAILURE;
        }
    };
    let mut ok = true;
    if let Some(damage) = &log.damage {
        eprintln!("warning: WAL damaged — {damage}");
        eprintln!(
            "         replaying the intact prefix ({} records)",
            log.events.len()
        );
        ok = false;
    }
    let Some((seed, meta)) = genoc::obs::run_start(&log.events) else {
        eprintln!("{}: no RunStart record", args.wal.display());
        return ExitCode::FAILURE;
    };
    let Some(meta) = meta else {
        eprintln!(
            "{}: RunStart carries no instance metadata; cannot rebuild the network",
            args.wal.display()
        );
        return ExitCode::FAILURE;
    };
    let instance = match Instance::from_meta(&meta.meta) {
        Ok(instance) => instance,
        Err(e) => {
            eprintln!("cannot rebuild instance {}: {e}", meta.meta.instance_name());
            return ExitCode::FAILURE;
        }
    };
    println!(
        "run: {} + {:?}, seed {seed}",
        meta.meta.instance_name(),
        meta.switching
    );

    let recorded = genoc::obs::recorded_outcome(&log.events);
    let total = genoc::obs::final_steps(&log.events);
    let target = args.to_step.unwrap_or(total).min(total);
    let replayed = match genoc::obs::replay_to(instance.net.as_ref(), &log.events, target) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("replay to step {target} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match recorded {
        Some((outcome, steps)) => println!("recorded: {outcome:?} after {steps} steps"),
        None => println!("recorded: no footer (run did not end cleanly)"),
    }
    println!(
        "replayed to step {target}/{total}: {} in flight, {} arrived, {} flits delivered",
        replayed.travels().len(),
        replayed.arrived().len(),
        replayed.delivered_flits()
    );
    let cycle = find_wait_cycle(&replayed);
    if let Some(c) = &cycle {
        println!(
            "wait-for cycle in the replayed state: {}",
            c.msgs
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" → ")
        );
    }

    if args.last > 0 {
        println!("\nlast {} events before the verdict:", args.last);
        for line in genoc::obs::tail_lines(&log.events, args.last) {
            println!("  {line}");
        }
    }
    if args.metrics {
        println!("\n{}", log_metrics(&log, &replayed, target));
    }

    if let Some(expect) = &args.expect {
        let verdict = match expect.as_str() {
            "recorded" => recorded.is_some(),
            "evacuated" => matches!(recorded, Some((Outcome::Evacuated, _))),
            "steplimit" => matches!(recorded, Some((Outcome::StepLimit, _))),
            // A deadlock claim must be re-derivable from the reconstructed
            // state itself, not just the footer.
            "deadlock" => matches!(recorded, Some((Outcome::Deadlock, _))) && cycle.is_some(),
            other => {
                eprintln!(
                    "--expect {other:?}: expected evacuated, deadlock, steplimit, or recorded"
                );
                return ExitCode::FAILURE;
            }
        };
        if verdict {
            println!("expectation {expect:?} holds");
        } else {
            eprintln!("expectation {expect:?} VIOLATED");
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
