//! The explorer CLI: exhaustively enumerate the reachable configurations of
//! a pressure workload on one instance, print the verdict (and the minimal
//! counterexample trace, if a deadlock is reachable), and optionally export
//! the state graph.
//!
//! ```text
//! cargo run --release -p genoc --bin explore -- [FLAGS]
//!
//!   --routing <label>        routing kind, e.g. xy, shortest, dor  [default: xy]
//!   --width <N>              mesh/torus width; ring/spidergon size [default: 2]
//!   --height <N>             mesh/torus height (1-D topologies: 1) [default: 2]
//!   --capacity <N>           per-port buffer capacity              [default: 1]
//!   --switching <label>      wormhole|vct|store-forward     [default: wormhole]
//!   --flits <N>              flits per message                     [default: 2]
//!   --messages <N>           keep only the first N pressure messages, 0 = all
//!   --bound <N>              state bound                      [default: 100000]
//!   --symmetry <on|off>      node-automorphism reduction          [default: on]
//!   --por <on|off>           partial-order reduction             [default: off]
//!   --jobs <N>               worker threads for the frontier       [default: 1]
//!   --mem-limit <BYTES>      stop past this state-storage size (k/m/g suffix)
//!   --spill-dir <path>       with --mem-limit: spill cold state to disk here
//!                            instead of stopping
//!   --aut <path>             write the state graph in Aldebaran (.aut) format
//!   --dot <path>             write the state graph as Graphviz DOT
//! ```
//!
//! Exit status distinguishes the outcomes so scripts can gate precisely:
//! `0` is an exhaustive deadlock-freedom proof, `1` a reachable deadlock
//! (with its minimal trace printed), `2` a bound or memory-limit stop —
//! explicitly *not* a proof, and the INCONCLUSIVE line on stderr says
//! which of the two limits stopped the search — and `3` a usage or
//! harness error. The summary line reports throughput (states/second)
//! and the peak resident frontier bytes; a spilling run also reports how
//! many bytes went to disk. The `--aut`/`--dot` exports work on partial
//! spaces too: a graph cut short by the bound is still a valid
//! (under-approximate) LTS.

use std::path::PathBuf;
use std::process::ExitCode;

use genoc::prelude::*;

struct Args {
    routing: String,
    width: usize,
    height: Option<usize>,
    capacity: u32,
    switching: String,
    flits: usize,
    messages: usize,
    bound: usize,
    symmetry: bool,
    por: bool,
    jobs: usize,
    mem_limit: Option<usize>,
    spill_dir: Option<PathBuf>,
    aut: Option<PathBuf>,
    dot: Option<PathBuf>,
}

/// Parses a byte count with an optional `k`/`m`/`g` (×1024) suffix.
fn parse_bytes(text: &str) -> Result<usize, String> {
    let lower = text.to_ascii_lowercase();
    let (digits, shift) = match lower.strip_suffix(['k', 'm', 'g']) {
        Some(digits) => match lower.as_bytes()[lower.len() - 1] {
            b'k' => (digits, 10),
            b'm' => (digits, 20),
            _ => (digits, 30),
        },
        None => (lower.as_str(), 0),
    };
    let n: usize = digits.parse().map_err(|e| format!("{e}"))?;
    n.checked_shl(shift)
        .filter(|&v| v >> shift == n)
        .ok_or_else(|| format!("{text:?} overflows"))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        routing: "xy".into(),
        width: 2,
        height: None,
        capacity: 1,
        switching: "wormhole".into(),
        flits: 2,
        messages: 0,
        bound: 100_000,
        symmetry: true,
        por: false,
        jobs: 1,
        mem_limit: None,
        spill_dir: None,
        aut: None,
        dot: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--routing" => args.routing = value("--routing")?,
            "--width" => {
                args.width = value("--width")?
                    .parse()
                    .map_err(|e| format!("--width: {e}"))?;
            }
            "--height" => {
                args.height = Some(
                    value("--height")?
                        .parse()
                        .map_err(|e| format!("--height: {e}"))?,
                );
            }
            "--capacity" => {
                args.capacity = value("--capacity")?
                    .parse()
                    .map_err(|e| format!("--capacity: {e}"))?;
            }
            "--switching" => args.switching = value("--switching")?,
            "--flits" => {
                args.flits = value("--flits")?
                    .parse()
                    .map_err(|e| format!("--flits: {e}"))?;
            }
            "--messages" => {
                args.messages = value("--messages")?
                    .parse()
                    .map_err(|e| format!("--messages: {e}"))?;
            }
            "--bound" => {
                args.bound = value("--bound")?
                    .parse()
                    .map_err(|e| format!("--bound: {e}"))?;
            }
            "--symmetry" => {
                args.symmetry = match value("--symmetry")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--symmetry: expected on|off, got {other:?}")),
                };
            }
            "--por" => {
                args.por = match value("--por")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--por: expected on|off, got {other:?}")),
                };
            }
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse::<usize>()
                    .map_err(|e| format!("--jobs: {e}"))?
                    .max(1);
            }
            "--mem-limit" => {
                args.mem_limit = Some(
                    parse_bytes(&value("--mem-limit")?).map_err(|e| format!("--mem-limit: {e}"))?,
                );
            }
            "--spill-dir" => args.spill_dir = Some(PathBuf::from(value("--spill-dir")?)),
            "--aut" => args.aut = Some(PathBuf::from(value("--aut")?)),
            "--dot" => args.dot = Some(PathBuf::from(value("--dot")?)),
            "--help" | "-h" => {
                return Err(
                    "usage: explore [--routing LABEL] [--width N] [--height N] [--capacity N] \
                            [--switching wormhole|vct|store-forward] [--flits N] [--messages N] \
                            [--bound N] [--symmetry on|off] [--por on|off] [--jobs N] \
                            [--mem-limit BYTES] [--spill-dir PATH] [--aut PATH] [--dot PATH]"
                        .into(),
                );
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

/// Exhaustive deadlock-freedom proof.
const EXIT_PROOF: u8 = 0;
/// A deadlock is reachable; the minimal trace was printed.
const EXIT_DEADLOCK: u8 = 1;
/// The state bound or memory limit stopped the search — no verdict.
const EXIT_BOUND: u8 = 2;
/// Bad usage or a harness error.
const EXIT_ERROR: u8 = 3;

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    let Some(kind) = RoutingKind::ALL.iter().find(|k| k.label() == args.routing) else {
        let labels: Vec<&str> = RoutingKind::ALL.iter().map(|k| k.label()).collect();
        eprintln!(
            "unknown routing {:?}: expected one of {}",
            args.routing,
            labels.join(", ")
        );
        return ExitCode::from(EXIT_ERROR);
    };
    let policy: Box<dyn SwitchingPolicy> = match args.switching.as_str() {
        "wormhole" => Box::new(WormholePolicy::default()),
        "vct" => Box::new(VirtualCutThroughPolicy::new()),
        "store-forward" => Box::new(StoreForwardPolicy::new()),
        other => {
            eprintln!("unknown switching {other:?}: expected wormhole, vct, or store-forward");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    let height = args.height.unwrap_or(match kind.topology() {
        TopologyKind::Ring | TopologyKind::Spidergon => 1,
        TopologyKind::Mesh | TopologyKind::Torus => 2,
    });
    let meta = InstanceMeta::new(*kind, args.width, height, args.capacity);
    let instance = match Instance::from_meta(&meta) {
        Ok(instance) => instance,
        Err(msg) => {
            eprintln!("{}: {msg}", meta.instance_name());
            return ExitCode::from(EXIT_ERROR);
        }
    };
    let mut specs = pressure_specs(&meta, args.flits);
    if args.messages > 0 {
        specs.truncate(args.messages);
    }
    let record_graph = args.aut.is_some() || args.dot.is_some();
    if record_graph && args.jobs > 1 {
        eprintln!("note: graph export forces the sequential frontier; --jobs ignored");
    }
    if record_graph && args.spill_dir.is_some() {
        eprintln!("note: graph export forces the sequential frontier; --spill-dir ignored");
    }
    if args.spill_dir.is_some() && args.mem_limit.is_none() {
        eprintln!("note: --spill-dir only takes effect together with --mem-limit");
    }
    let options = ExploreOptions {
        max_states: args.bound,
        symmetry: args.symmetry,
        record_graph,
        por: args.por,
        jobs: args.jobs,
        mem_limit: args.mem_limit,
        spill_dir: args.spill_dir.clone(),
        ..ExploreOptions::default()
    };
    let start = std::time::Instant::now();
    let result = match explore_policy(
        instance.net.as_ref(),
        instance.routing.as_ref(),
        &meta,
        &specs,
        policy.as_ref(),
        &options,
    ) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("{}: exploration failed: {e}", instance.name);
            return ExitCode::from(EXIT_ERROR);
        }
    };
    let wall = start.elapsed();

    println!(
        "{} · {} · {} message(s) × {} flit(s)",
        instance.name,
        args.switching,
        specs.len(),
        args.flits
    );
    println!(
        "states {} · transitions {} · enabled {} · depth {} · symmetry group {}{}",
        result.states,
        result.transitions,
        result.enabled_moves,
        result.depth,
        result.group_size,
        if args.por {
            format!(
                " · por {:.2}x",
                result.enabled_moves as f64 / (result.transitions.max(1)) as f64
            )
        } else {
            String::new()
        }
    );
    println!(
        "wall {wall:.2?} · {:.0} states/s · peak resident {} bytes{}",
        result.states as f64 / wall.as_secs_f64().max(1e-9),
        result.peak_bytes,
        if result.spilled_bytes > 0 {
            format!(" · spilled {} bytes", result.spilled_bytes)
        } else {
            String::new()
        }
    );
    match &result.verdict {
        Verdict::NoReachableDeadlock => {
            println!("verdict: no reachable deadlock (exhaustive within the bound)");
        }
        Verdict::Deadlock(cex) => {
            println!(
                "verdict: deadlock reachable in {} move(s); minimal trace:",
                cex.trace.len()
            );
            for (i, mv) in cex.trace.iter().enumerate() {
                println!("  {i:>4}  {mv}");
            }
        }
        Verdict::BoundExceeded => {
            let memory_bound = result.bound == Some(genoc::explore::BoundReason::Memory);
            let (what, fix) = if memory_bound {
                (
                    format!(
                        "memory-bound: state storage outgrew --mem-limit {} bytes",
                        args.mem_limit.unwrap_or(0)
                    ),
                    "raise --mem-limit or add --spill-dir to keep searching on disk",
                )
            } else {
                (
                    format!(
                        "state-bound: stopped at the --bound {} state cap",
                        args.bound
                    ),
                    "raise --bound to finish",
                )
            };
            eprintln!(
                "verdict: INCONCLUSIVE ({what}) — the search stopped at {} states; \
                 this is NOT a deadlock-freedom proof, {fix}",
                result.states,
            );
        }
    }

    for (path, rendered, what) in [
        (&args.aut, genoc::explore::to_aut(&result), ".aut"),
        (
            &args.dot,
            genoc::explore::to_dot(&result, &instance.name),
            "DOT",
        ),
    ] {
        let Some(path) = path else { continue };
        let text = rendered.expect("record_graph is on whenever an export path is given");
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write {} export {}: {e}", what, path.display());
            return ExitCode::from(EXIT_ERROR);
        }
        eprintln!("{what} export: {}", path.display());
    }

    ExitCode::from(match result.verdict {
        Verdict::NoReachableDeadlock => EXIT_PROOF,
        Verdict::Deadlock(_) => EXIT_DEADLOCK,
        Verdict::BoundExceeded => EXIT_BOUND,
    })
}
