//! The explorer CLI: exhaustively enumerate the reachable configurations of
//! a pressure workload on one instance, print the verdict (and the minimal
//! counterexample trace, if a deadlock is reachable), and optionally export
//! the state graph.
//!
//! ```text
//! cargo run --release -p genoc --bin explore -- [FLAGS]
//!
//!   --routing <label>        routing kind, e.g. xy, shortest, dor  [default: xy]
//!   --width <N>              mesh/torus width; ring/spidergon size [default: 2]
//!   --height <N>             mesh/torus height (1-D topologies: 1) [default: 2]
//!   --capacity <N>           per-port buffer capacity              [default: 1]
//!   --switching <label>      wormhole|vct|store-forward     [default: wormhole]
//!   --flits <N>              flits per message                     [default: 2]
//!   --messages <N>           keep only the first N pressure messages, 0 = all
//!   --bound <N>              state bound                      [default: 100000]
//!   --symmetry <on|off>      node-automorphism reduction          [default: on]
//!   --aut <path>             write the state graph in Aldebaran (.aut) format
//!   --dot <path>             write the state graph as Graphviz DOT
//! ```
//!
//! Exit status is non-zero when a deadlock is reachable or the bound was
//! hit, so scripts can gate on an exhaustive deadlock-freedom proof.

use std::path::PathBuf;
use std::process::ExitCode;

use genoc::prelude::*;

struct Args {
    routing: String,
    width: usize,
    height: Option<usize>,
    capacity: u32,
    switching: String,
    flits: usize,
    messages: usize,
    bound: usize,
    symmetry: bool,
    aut: Option<PathBuf>,
    dot: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        routing: "xy".into(),
        width: 2,
        height: None,
        capacity: 1,
        switching: "wormhole".into(),
        flits: 2,
        messages: 0,
        bound: 100_000,
        symmetry: true,
        aut: None,
        dot: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--routing" => args.routing = value("--routing")?,
            "--width" => {
                args.width = value("--width")?
                    .parse()
                    .map_err(|e| format!("--width: {e}"))?;
            }
            "--height" => {
                args.height = Some(
                    value("--height")?
                        .parse()
                        .map_err(|e| format!("--height: {e}"))?,
                );
            }
            "--capacity" => {
                args.capacity = value("--capacity")?
                    .parse()
                    .map_err(|e| format!("--capacity: {e}"))?;
            }
            "--switching" => args.switching = value("--switching")?,
            "--flits" => {
                args.flits = value("--flits")?
                    .parse()
                    .map_err(|e| format!("--flits: {e}"))?;
            }
            "--messages" => {
                args.messages = value("--messages")?
                    .parse()
                    .map_err(|e| format!("--messages: {e}"))?;
            }
            "--bound" => {
                args.bound = value("--bound")?
                    .parse()
                    .map_err(|e| format!("--bound: {e}"))?;
            }
            "--symmetry" => {
                args.symmetry = match value("--symmetry")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--symmetry: expected on|off, got {other:?}")),
                };
            }
            "--aut" => args.aut = Some(PathBuf::from(value("--aut")?)),
            "--dot" => args.dot = Some(PathBuf::from(value("--dot")?)),
            "--help" | "-h" => {
                return Err(
                    "usage: explore [--routing LABEL] [--width N] [--height N] [--capacity N] \
                            [--switching wormhole|vct|store-forward] [--flits N] [--messages N] \
                            [--bound N] [--symmetry on|off] [--aut PATH] [--dot PATH]"
                        .into(),
                );
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let Some(kind) = RoutingKind::ALL.iter().find(|k| k.label() == args.routing) else {
        let labels: Vec<&str> = RoutingKind::ALL.iter().map(|k| k.label()).collect();
        eprintln!(
            "unknown routing {:?}: expected one of {}",
            args.routing,
            labels.join(", ")
        );
        return ExitCode::FAILURE;
    };
    let policy: Box<dyn SwitchingPolicy> = match args.switching.as_str() {
        "wormhole" => Box::new(WormholePolicy::default()),
        "vct" => Box::new(VirtualCutThroughPolicy::new()),
        "store-forward" => Box::new(StoreForwardPolicy::new()),
        other => {
            eprintln!("unknown switching {other:?}: expected wormhole, vct, or store-forward");
            return ExitCode::FAILURE;
        }
    };
    let height = args.height.unwrap_or(match kind.topology() {
        TopologyKind::Ring | TopologyKind::Spidergon => 1,
        TopologyKind::Mesh | TopologyKind::Torus => 2,
    });
    let meta = InstanceMeta::new(*kind, args.width, height, args.capacity);
    let instance = match Instance::from_meta(&meta) {
        Ok(instance) => instance,
        Err(msg) => {
            eprintln!("{}: {msg}", meta.instance_name());
            return ExitCode::FAILURE;
        }
    };
    let mut specs = pressure_specs(&meta, args.flits);
    if args.messages > 0 {
        specs.truncate(args.messages);
    }
    let options = ExploreOptions {
        max_states: args.bound,
        symmetry: args.symmetry,
        record_graph: args.aut.is_some() || args.dot.is_some(),
    };
    let result = match explore_policy(
        instance.net.as_ref(),
        instance.routing.as_ref(),
        &meta,
        &specs,
        policy.as_ref(),
        &options,
    ) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("{}: exploration failed: {e}", instance.name);
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{} · {} · {} message(s) × {} flit(s)",
        instance.name,
        args.switching,
        specs.len(),
        args.flits
    );
    println!(
        "states {} · transitions {} · depth {} · symmetry group {}",
        result.states, result.transitions, result.depth, result.group_size
    );
    match &result.verdict {
        Verdict::NoReachableDeadlock => {
            println!("verdict: no reachable deadlock (exhaustive within the bound)");
        }
        Verdict::Deadlock(cex) => {
            println!(
                "verdict: deadlock reachable in {} move(s); minimal trace:",
                cex.trace.len()
            );
            for (i, mv) in cex.trace.iter().enumerate() {
                println!("  {i:>4}  {mv}");
            }
        }
        Verdict::BoundExceeded => {
            println!("verdict: state bound {} exceeded — no verdict", args.bound);
        }
    }

    for (path, rendered, what) in [
        (&args.aut, genoc::explore::to_aut(&result), ".aut"),
        (
            &args.dot,
            genoc::explore::to_dot(&result, &instance.name),
            "DOT",
        ),
    ] {
        let Some(path) = path else { continue };
        let text = rendered.expect("record_graph is on whenever an export path is given");
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write {} export {}: {e}", what, path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("{what} export: {}", path.display());
    }

    match result.verdict {
        Verdict::NoReachableDeadlock => ExitCode::SUCCESS,
        _ => ExitCode::FAILURE,
    }
}
