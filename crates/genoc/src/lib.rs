//! # GeNoC-rs
//!
//! An executable, generic model of networks-on-chips with machine-checked
//! deadlock-freedom and evacuation, reproducing *"Formal Specification of
//! Networks-on-Chips: Deadlock and Evacuation"* (F. Verbeek and J. Schmaltz,
//! DATE 2010).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the generic GeNoC model: configurations
//!   `σ = ⟨T, ST, A⟩`, the interpreter with its deadlock predicate `Ω`,
//!   termination measures, traces, executable theorem statements;
//! * [`topology`] — HERMES mesh, torus, ring, Spidergon
//!   (virtual channels modelled as extra ports);
//! * [`routing`] — the paper's `Rxy` plus YX, turn models,
//!   dimension-order with datelines, Spidergon across-first, and
//!   deliberately deadlock-prone comparators;
//! * [`switching`] — wormhole `Swh`, virtual cut-through,
//!   store-and-forward;
//! * [`depgraph`] — port/channel dependency graphs, cycle
//!   search, SCCs, ranking certificates, flows, Theorem 1 witnesses;
//! * [`explore`] — the exhaustive bounded state-space oracle: BFS over
//!   all move interleavings with symmetry reduction, minimal
//!   counterexample traces, `.aut`/DOT state-graph export
//!   (`cargo run -p genoc --bin explore`);
//! * [`sim`] — workloads, statistics, deadlock hunting;
//! * [`detect`] — online deadlock detection (exact wait-for graph
//!   plus timeout heuristic) and recovery (abort, escape channel, drain);
//! * [`obs`] — observability: the structured event WAL, deterministic
//!   replay of any recorded step, post-mortem tails, and the hand-rolled
//!   Prometheus metrics registry (`cargo run -p genoc --bin replay`);
//! * [`verif`] — the obligation-discharge engine, the Table I
//!   effort analogue, and the runtime-vs-static detection cross-check;
//! * [`campaign`] — the sharded verification-campaign runner: scenario
//!   matrices, the work-stealing executor, JSON/markdown reports
//!   (`cargo run -p genoc --bin campaign`).
//!
//! ## Quickstart
//!
//! ```
//! use genoc::prelude::*;
//!
//! # fn main() -> Result<(), genoc_core::Error> {
//! // The paper's instance: XY routing on a HERMES mesh.
//! let mesh = Mesh::new(3, 3, 1);
//! let routing = XyRouting::new(&mesh);
//!
//! // Discharge (C-3): the port dependency graph is acyclic.
//! let graph = port_dependency_graph(&mesh, &routing);
//! assert!(find_cycle(&graph).is_none());
//!
//! // Run a workload and check the evacuation theorem.
//! let specs = [MessageSpec::new(mesh.node(0, 0), mesh.node(2, 2), 4)];
//! let cfg = Config::from_specs(&mesh, &routing, &specs)?;
//! let injected: Vec<MsgId> = cfg.travels().iter().map(|t| t.id()).collect();
//! let result = run(&mesh, &IdentityInjection, &mut WormholePolicy::default(), cfg,
//!                  &RunOptions::default())?;
//! assert!(check_evacuation(&injected, &result).holds);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use genoc_campaign as campaign;
pub use genoc_core as core;
pub use genoc_depgraph as depgraph;
pub use genoc_detect as detect;
pub use genoc_explore as explore;
pub use genoc_obs as obs;
pub use genoc_routing as routing;
pub use genoc_sim as sim;
pub use genoc_switching as switching;
pub use genoc_topology as topology;
pub use genoc_verif as verif;

/// The most commonly used items of every crate, for glob import.
pub mod prelude {
    pub use genoc_campaign::{
        run_campaign, run_scenario, run_scenario_with, scenario_seed, CampaignOptions,
        CampaignReport, CheckStatus, EffortProfile, ScenarioMatrix, ScenarioMetrics,
        ScenarioOutcome, ScenarioSpec,
    };
    pub use genoc_core::arena::{run_arena, ArenaConfig, ArenaKernel, ArenaSpec, MoveRec};
    pub use genoc_core::blocking::{block_events, find_wait_cycle, BlockEvent, WaitCycle};
    pub use genoc_core::config::Config;
    pub use genoc_core::ids::{MsgId, NodeId, PortId};
    pub use genoc_core::injection::{IdentityInjection, InjectionMethod, ScheduledInjection};
    pub use genoc_core::interpreter::{run, Outcome, RunOptions, RunResult};
    pub use genoc_core::kernel::{run_kernelised, Kernel, Transition, TravelStatus};
    pub use genoc_core::measure::{ProgressMeasure, RouteLengthMeasure, TerminationMeasure};
    pub use genoc_core::meta::{InstanceMeta, RoutingKind, SwitchingKind, TopologyKind};
    pub use genoc_core::network::{Direction, Network, PortAttrs};
    pub use genoc_core::obligations::{ObligationId, ObligationReport};
    pub use genoc_core::routing::{compute_route, RoutingFunction};
    pub use genoc_core::spec::MessageSpec;
    pub use genoc_core::switching::{KernelSpec, StepReport, SwitchingPolicy};
    pub use genoc_core::theorems::{check_correctness, check_evacuation};
    pub use genoc_core::travel::{FlitPos, Travel};
    pub use genoc_depgraph::{
        channel_dependency_graph, check_flow_escapes, cycle_from_deadlock, deadlock_from_cycle,
        find_cycle, is_cyclic_by_scc, port_dependency_graph, to_dot, verify_ranking,
        xy_mesh_dependency_graph, xy_mesh_ranking, DiGraph,
    };
    pub use genoc_detect::{
        AbortAndEvacuate, DetectionEngine, DrainAll, EngineOptions, EscapeChannel, EscapeRoute,
        ExactDetector, RecoveryPolicy, RingEscape, TimeoutDetector,
    };
    pub use genoc_explore::{
        explore, explore_policy, explore_workload, pressure_specs, replay, Counterexample,
        Exploration, ExploreOptions, Verdict,
    };
    pub use genoc_obs::{
        read_wal, read_wal_bytes, record_hunt, replay_to, shared, tail_lines, MetricsRegistry,
        ObsSummary, ObservedEngine, Recorder, RecorderOptions, WalEvent, WalLog, WalMeta,
        WalWriter,
    };
    pub use genoc_routing::{
        AcrossFirstDatelineRouting, AcrossFirstRouting, MinimalAdaptiveRouting, MixedXyYxRouting,
        RingDatelineRouting, RingShortestRouting, TorusDorDatelineRouting, TorusDorRouting,
        TurnModel, TurnModelRouting, XyRouting, YxRouting,
    };
    pub use genoc_sim::adaptive::{config_with_selected_routes, select_routes, simulate_selected};
    pub use genoc_sim::{
        hunt_random, hunt_workload, run_policy, simulate, simulate_hooked, simulate_observed,
        simulate_observed_config, DetectorHook, Hunt, HuntOptions, LatencySummary, NullHook,
        NullObserver, RecoverySummary, RunObserver, SimOptions, SimResult, Stepper,
    };
    pub use genoc_switching::{
        Arbitration, StoreForwardPolicy, VirtualCutThroughPolicy, WormholePolicy,
    };
    pub use genoc_topology::{Cardinal, Fabric, Mesh, Ring, RingDir, Spidergon, Torus};
    pub use genoc_verif::{
        check_all, check_c5_with, check_detection, check_theorem1, check_theorem2,
        check_theorem2_with, effort_table, explore_check, render_effort_table,
        DetectionCheckOptions, DetectionReport, ExploreCheckOptions, ExploreReport, Instance,
        TextTable,
    };
}
