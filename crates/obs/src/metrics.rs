//! A hand-rolled metrics registry (no serde/prometheus dependencies):
//! named counters and gauges with optional labels, rendered in the
//! Prometheus text exposition format to a string or snapshot file.
//!
//! ```
//! use genoc_obs::{MetricKind, MetricsRegistry};
//!
//! let mut reg = MetricsRegistry::new();
//! reg.declare("genoc_flits_per_sec", MetricKind::Gauge, "Delivered flits per wall-clock second");
//! reg.set("genoc_flits_per_sec", &[("scenario", "mesh-3x3/xy")], 1250.0);
//! let text = reg.render();
//! assert!(text.contains("# TYPE genoc_flits_per_sec gauge"));
//! assert!(text.contains("genoc_flits_per_sec{scenario=\"mesh-3x3/xy\"} 1250"));
//! ```

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Prometheus metric type.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MetricKind {
    /// Monotonically increasing value.
    Counter,
    /// Value that can go up and down.
    Gauge,
}

impl MetricKind {
    fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

struct Metric {
    name: String,
    kind: MetricKind,
    help: String,
    /// `(rendered label set, value)`, insertion-ordered.
    samples: Vec<(String, f64)>,
}

/// An insertion-ordered registry of counters and gauges.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Vec<Metric>,
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let escaped = v
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n");
        let _ = write!(out, "{k}=\"{escaped}\"");
    }
    out.push('}');
    out
}

/// Renders a value the way Prometheus text format expects (no trailing
/// zeros for integral values, `NaN`/`+Inf`/`-Inf` spelled out).
fn render_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v.is_infinite() {
        if v > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        }
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a metric with its type and help text. Idempotent: a second
    /// declaration of the same name is ignored (first kind/help win).
    pub fn declare(&mut self, name: &str, kind: MetricKind, help: &str) {
        if self.metrics.iter().all(|m| m.name != name) {
            self.metrics.push(Metric {
                name: name.to_string(),
                kind,
                help: help.to_string(),
                samples: Vec::new(),
            });
        }
    }

    fn metric_mut(&mut self, name: &str, default_kind: MetricKind) -> &mut Metric {
        if let Some(i) = self.metrics.iter().position(|m| m.name == name) {
            return &mut self.metrics[i];
        }
        self.metrics.push(Metric {
            name: name.to_string(),
            kind: default_kind,
            help: String::new(),
            samples: Vec::new(),
        });
        self.metrics.last_mut().expect("just pushed")
    }

    /// Sets the sample for `(name, labels)`, declaring the metric as a
    /// gauge if it was never declared.
    pub fn set(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let key = render_labels(labels);
        let metric = self.metric_mut(name, MetricKind::Gauge);
        match metric.samples.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => metric.samples.push((key, value)),
        }
    }

    /// Adds `delta` to the sample for `(name, labels)` (starting from 0),
    /// declaring the metric as a counter if it was never declared.
    pub fn add(&mut self, name: &str, labels: &[(&str, &str)], delta: f64) {
        let key = render_labels(labels);
        let metric = self.metric_mut(name, MetricKind::Counter);
        match metric.samples.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v += delta,
            None => metric.samples.push((key, delta)),
        }
    }

    /// The current value of `(name, labels)`, if sampled.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = render_labels(labels);
        self.metrics
            .iter()
            .find(|m| m.name == name)?
            .samples
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, v)| v)
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            if !m.help.is_empty() {
                let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
            }
            let _ = writeln!(out, "# TYPE {} {}", m.name, m.kind.label());
            for (labels, value) in &m.samples {
                let _ = writeln!(out, "{}{} {}", m.name, labels, render_value(*value));
            }
        }
        out
    }

    /// Writes the rendered snapshot to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_help_type_and_labeled_samples() {
        let mut reg = MetricsRegistry::new();
        reg.declare("genoc_steps_total", MetricKind::Counter, "Total steps");
        reg.add("genoc_steps_total", &[], 41.0);
        reg.add("genoc_steps_total", &[], 1.0);
        reg.set("genoc_blocked_peak", &[("scenario", "ring-4/dor")], 3.0);
        let text = reg.render();
        assert!(text.contains("# HELP genoc_steps_total Total steps"));
        assert!(text.contains("# TYPE genoc_steps_total counter"));
        assert!(text.contains("genoc_steps_total 42"));
        assert!(text.contains("# TYPE genoc_blocked_peak gauge"));
        assert!(text.contains("genoc_blocked_peak{scenario=\"ring-4/dor\"} 3"));
    }

    #[test]
    fn escapes_label_values() {
        let mut reg = MetricsRegistry::new();
        reg.set("m", &[("l", "a\"b\\c")], 1.0);
        assert!(reg.render().contains("m{l=\"a\\\"b\\\\c\"} 1"));
    }

    #[test]
    fn upserts_samples_by_label_set() {
        let mut reg = MetricsRegistry::new();
        reg.set("m", &[("a", "1")], 1.0);
        reg.set("m", &[("a", "1")], 2.0);
        reg.set("m", &[("a", "2")], 3.0);
        assert_eq!(reg.value("m", &[("a", "1")]), Some(2.0));
        assert_eq!(reg.value("m", &[("a", "2")]), Some(3.0));
        assert_eq!(reg.value("m", &[("a", "3")]), None);
    }

    #[test]
    fn fractional_values_keep_their_precision() {
        assert_eq!(render_value(1.5), "1.5");
        assert_eq!(render_value(2.0), "2");
        assert_eq!(render_value(f64::INFINITY), "+Inf");
    }
}
