//! The structured event write-ahead log: an append-only binary file of
//! framed, checksummed records describing one simulation run.
//!
//! ## Format
//!
//! A log starts with the 8-byte magic `GENOCWAL` and a `u32` format
//! version. Each record is then framed as
//!
//! ```text
//! len: u32 | kind: u8 | payload: [u8; len] | checksum: u64
//! ```
//!
//! with all integers little-endian and the checksum an FNV-1a hash over
//! `kind` followed by the payload. Frames make a damaged or truncated tail
//! *detectable without being fatal*: [`read_wal_bytes`] returns every record
//! up to the damage plus a description of it, and never panics on arbitrary
//! input (the round-trip and corruption property tests in
//! `tests/obs_wal.rs` pin this down).
//!
//! Record kinds mirror the kernel's evidence stream one-to-one — injections,
//! flit moves, status [`WalEvent::Transition`]s (a `Blocked(p)` transition *is* a
//! wait-for edge), freed ports, derived wait-for edge add/remove, detector
//! firings and recovery actions — plus periodic [`WalEvent::Snapshot`]
//! records holding the full travel state so [`replay_to`](crate::replay_to)
//! can seek without scanning from the start.

use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;

use genoc_core::interpreter::Outcome;
use genoc_core::kernel::TravelStatus;
use genoc_core::meta::{InstanceMeta, RoutingKind, SwitchingKind};
use genoc_core::moves::MoveKind;
use genoc_core::travel::FlitPos;
use genoc_core::{MsgId, PortId};

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"GENOCWAL";
/// Current format version.
pub const WAL_VERSION: u32 = 1;

/// Sentinel encoding `None` for optional port/message fields.
const NONE_SENTINEL: u32 = u32::MAX;

/// Instance identity carried in the [`WalEvent::RunStart`] record, enough to
/// rebuild the network for replay (`genoc_verif::Instance::from_meta`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WalMeta {
    /// Topology/routing/size identity of the instance.
    pub meta: InstanceMeta,
    /// Switching policy the run used.
    pub switching: SwitchingKind,
}

/// Full position image of one travel inside a [`WalEvent::Snapshot`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TravelImage {
    /// Message identifier.
    pub id: MsgId,
    /// The (possibly rerouted) route at snapshot time.
    pub route: Vec<PortId>,
    /// Position of every flit, head first.
    pub flits: Vec<FlitPos>,
}

/// Which recovery action a [`WalEvent::Recovery`] record describes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecoveryAction {
    /// Messages aborted and evacuated.
    Abort,
    /// Messages diverted onto an escape route.
    Reroute,
    /// A drain-and-restart round (no per-message list).
    Restart,
}

/// One decoded WAL record.
#[derive(Clone, PartialEq, Debug)]
pub enum WalEvent {
    /// Run header: format version, workload seed, and (when known) the
    /// instance identity for replay.
    RunStart {
        /// Format version of the writer.
        version: u32,
        /// Seed identifying the workload.
        seed: u64,
        /// Instance identity, when the recorder knew it.
        meta: Option<WalMeta>,
    },
    /// A message entering the initial configuration.
    Inject {
        /// Message identifier.
        msg: MsgId,
        /// Number of flits.
        flits: u32,
        /// The assigned route.
        route: Vec<PortId>,
    },
    /// Marks the start of switching step `step`; all following movement and
    /// transition records up to the next marker belong to it.
    StepBegin {
        /// Step index (0-based).
        step: u64,
    },
    /// One flit movement.
    Move {
        /// Message the flit belongs to.
        msg: MsgId,
        /// Flit index within the message (0 is the header).
        flit: u32,
        /// Enter / advance / eject.
        kind: MoveKind,
        /// The port entered, advanced into, or ejected from.
        port: PortId,
    },
    /// A kernel status transition (a `Blocked(p)` transition is a wait-for
    /// edge forming on port `p`).
    Transition {
        /// The travel that changed status.
        msg: MsgId,
        /// Its new status.
        status: TravelStatus,
    },
    /// A port freed during the step (the wake condition log).
    FreedPort {
        /// The freed port.
        port: PortId,
    },
    /// A wait-for edge appearing: `msg` waits for `wants`, currently owned
    /// by `on` (if any owner exists).
    EdgeAdd {
        /// The blocked travel.
        msg: MsgId,
        /// The port it needs.
        wants: PortId,
        /// The travel owning that port, when known.
        on: Option<MsgId>,
    },
    /// The wait-for edge of `msg` disappearing (it woke or arrived).
    EdgeRemove {
        /// The travel that is no longer blocked.
        msg: MsgId,
    },
    /// The detector confirmed a wait-for cycle.
    Detection {
        /// Step after which the cycle was observed.
        step: u64,
        /// Travels of the cycle, in wait order.
        msgs: Vec<MsgId>,
        /// Port expansion of the cycle.
        ports: Vec<PortId>,
    },
    /// A recovery action taken by the detection engine.
    Recovery {
        /// What kind of recovery.
        action: RecoveryAction,
        /// Affected messages (empty for drain-and-restart rounds).
        msgs: Vec<MsgId>,
    },
    /// Full state snapshot after `step` completed steps. Replay barriers:
    /// any wait-for state derived from earlier records is void after a
    /// snapshot written by a recovery mutation.
    Snapshot {
        /// Completed switching steps at snapshot time.
        step: u64,
        /// Travels still in flight, in configuration order.
        inflight: Vec<TravelImage>,
        /// Travels already arrived, in arrival order.
        arrived: Vec<TravelImage>,
    },
    /// Run footer.
    RunEnd {
        /// How the run ended.
        outcome: Outcome,
        /// Total switching steps.
        steps: u64,
    },
}

const KIND_RUN_START: u8 = 1;
const KIND_INJECT: u8 = 2;
const KIND_STEP_BEGIN: u8 = 3;
const KIND_MOVE: u8 = 4;
const KIND_TRANSITION: u8 = 5;
const KIND_FREED_PORT: u8 = 6;
const KIND_EDGE_ADD: u8 = 7;
const KIND_EDGE_REMOVE: u8 = 8;
const KIND_DETECTION: u8 = 9;
const KIND_RECOVERY: u8 = 10;
const KIND_SNAPSHOT: u8 = 11;
const KIND_RUN_END: u8 = 12;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(kind: u8, payload: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    h ^= u64::from(kind);
    h = h.wrapping_mul(FNV_PRIME);
    for &b in payload {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_ports(buf: &mut Vec<u8>, ports: &[PortId]) {
    put_u32(buf, ports.len() as u32);
    for p in ports {
        put_u32(buf, p.index() as u32);
    }
}

fn put_msgs(buf: &mut Vec<u8>, msgs: &[MsgId]) {
    put_u32(buf, msgs.len() as u32);
    for m in msgs {
        put_u32(buf, m.index() as u32);
    }
}

fn flit_pos_code(pos: FlitPos) -> u32 {
    match pos {
        FlitPos::Pending => 0,
        FlitPos::InNetwork(k) => (k as u32) + 1,
        FlitPos::Delivered => NONE_SENTINEL,
    }
}

fn flit_pos_decode(code: u32) -> FlitPos {
    match code {
        0 => FlitPos::Pending,
        NONE_SENTINEL => FlitPos::Delivered,
        k => FlitPos::InNetwork((k - 1) as usize),
    }
}

fn put_image(buf: &mut Vec<u8>, img: &TravelImage) {
    put_u32(buf, img.id.index() as u32);
    put_ports(buf, &img.route);
    put_u32(buf, img.flits.len() as u32);
    for &pos in &img.flits {
        put_u32(buf, flit_pos_code(pos));
    }
}

fn routing_index(kind: RoutingKind) -> u8 {
    RoutingKind::ALL
        .iter()
        .position(|&r| r == kind)
        .expect("RoutingKind::ALL is exhaustive") as u8
}

fn switching_index(kind: SwitchingKind) -> u8 {
    SwitchingKind::ALL
        .iter()
        .position(|&s| s == kind)
        .expect("SwitchingKind::ALL is exhaustive") as u8
}

fn encode_into(ev: &WalEvent, p: &mut Vec<u8>) -> u8 {
    p.clear();
    match ev {
        WalEvent::RunStart {
            version,
            seed,
            meta,
        } => {
            put_u32(p, *version);
            put_u64(p, *seed);
            match meta {
                None => p.push(0),
                Some(m) => {
                    p.push(1);
                    p.push(routing_index(m.meta.routing));
                    put_u32(p, m.meta.width as u32);
                    put_u32(p, m.meta.height as u32);
                    put_u32(p, m.meta.vcs as u32);
                    put_u32(p, m.meta.capacity);
                    p.push(switching_index(m.switching));
                }
            }
            KIND_RUN_START
        }
        WalEvent::Inject { msg, flits, route } => {
            put_u32(p, msg.index() as u32);
            put_u32(p, *flits);
            put_ports(p, route);
            KIND_INJECT
        }
        WalEvent::StepBegin { step } => {
            put_u64(p, *step);
            KIND_STEP_BEGIN
        }
        WalEvent::Move {
            msg,
            flit,
            kind,
            port,
        } => {
            put_u32(p, msg.index() as u32);
            put_u32(p, *flit);
            p.push(match kind {
                MoveKind::Enter => 0,
                MoveKind::Advance => 1,
                MoveKind::Eject => 2,
            });
            put_u32(p, port.index() as u32);
            KIND_MOVE
        }
        WalEvent::Transition { msg, status } => {
            put_u32(p, msg.index() as u32);
            let (code, port) = match status {
                TravelStatus::Pending => (0u8, NONE_SENTINEL),
                TravelStatus::Active => (1, NONE_SENTINEL),
                TravelStatus::Blocked(q) => (2, q.index() as u32),
                TravelStatus::Delivered => (3, NONE_SENTINEL),
            };
            p.push(code);
            put_u32(p, port);
            KIND_TRANSITION
        }
        WalEvent::FreedPort { port } => {
            put_u32(p, port.index() as u32);
            KIND_FREED_PORT
        }
        WalEvent::EdgeAdd { msg, wants, on } => {
            put_u32(p, msg.index() as u32);
            put_u32(p, wants.index() as u32);
            put_u32(p, on.map_or(NONE_SENTINEL, |m| m.index() as u32));
            KIND_EDGE_ADD
        }
        WalEvent::EdgeRemove { msg } => {
            put_u32(p, msg.index() as u32);
            KIND_EDGE_REMOVE
        }
        WalEvent::Detection { step, msgs, ports } => {
            put_u64(p, *step);
            put_msgs(p, msgs);
            put_ports(p, ports);
            KIND_DETECTION
        }
        WalEvent::Recovery { action, msgs } => {
            p.push(match action {
                RecoveryAction::Abort => 0,
                RecoveryAction::Reroute => 1,
                RecoveryAction::Restart => 2,
            });
            put_msgs(p, msgs);
            KIND_RECOVERY
        }
        WalEvent::Snapshot {
            step,
            inflight,
            arrived,
        } => {
            put_u64(p, *step);
            put_u32(p, inflight.len() as u32);
            for img in inflight {
                put_image(p, img);
            }
            put_u32(p, arrived.len() as u32);
            for img in arrived {
                put_image(p, img);
            }
            KIND_SNAPSHOT
        }
        WalEvent::RunEnd { outcome, steps } => {
            p.push(match outcome {
                Outcome::Evacuated => 0,
                Outcome::Deadlock => 1,
                Outcome::StepLimit => 2,
            });
            put_u64(p, *steps);
            KIND_RUN_END
        }
    }
}

/// Sequential reader over a byte slice; every `take_*` returns `None` past
/// the end instead of panicking.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn take_u8(&mut self) -> Option<u8> {
        let b = *self.data.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn take_u32(&mut self) -> Option<u32> {
        let bytes = self.data.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn take_u64(&mut self) -> Option<u64> {
        let bytes = self.data.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn take_ports(&mut self) -> Option<Vec<PortId>> {
        let n = self.take_u32()? as usize;
        if n > self.remaining() / 4 {
            return None;
        }
        (0..n)
            .map(|_| self.take_u32().map(|v| PortId::from_index(v as usize)))
            .collect()
    }

    fn take_msgs(&mut self) -> Option<Vec<MsgId>> {
        let n = self.take_u32()? as usize;
        if n > self.remaining() / 4 {
            return None;
        }
        (0..n)
            .map(|_| self.take_u32().map(|v| MsgId::from_index(v as usize)))
            .collect()
    }

    fn take_image(&mut self) -> Option<TravelImage> {
        let id = MsgId::from_index(self.take_u32()? as usize);
        let route = self.take_ports()?;
        let n = self.take_u32()? as usize;
        if n > self.remaining() / 4 {
            return None;
        }
        let flits = (0..n)
            .map(|_| self.take_u32().map(flit_pos_decode))
            .collect::<Option<Vec<_>>>()?;
        Some(TravelImage { id, route, flits })
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn done(&self) -> bool {
        self.pos == self.data.len()
    }
}

fn decode(kind: u8, payload: &[u8]) -> Option<WalEvent> {
    let mut c = Cursor::new(payload);
    let ev = match kind {
        KIND_RUN_START => {
            let version = c.take_u32()?;
            let seed = c.take_u64()?;
            let meta = match c.take_u8()? {
                0 => None,
                1 => {
                    let routing = *RoutingKind::ALL.get(c.take_u8()? as usize)?;
                    let width = c.take_u32()? as usize;
                    let height = c.take_u32()? as usize;
                    let vcs = c.take_u32()? as usize;
                    let capacity = c.take_u32()?;
                    let switching = *SwitchingKind::ALL.get(c.take_u8()? as usize)?;
                    let mut meta = InstanceMeta::new(routing, width, height, capacity);
                    meta.width = width;
                    meta.height = height;
                    meta.vcs = vcs;
                    Some(WalMeta { meta, switching })
                }
                _ => return None,
            };
            WalEvent::RunStart {
                version,
                seed,
                meta,
            }
        }
        KIND_INJECT => WalEvent::Inject {
            msg: MsgId::from_index(c.take_u32()? as usize),
            flits: c.take_u32()?,
            route: c.take_ports()?,
        },
        KIND_STEP_BEGIN => WalEvent::StepBegin {
            step: c.take_u64()?,
        },
        KIND_MOVE => WalEvent::Move {
            msg: MsgId::from_index(c.take_u32()? as usize),
            flit: c.take_u32()?,
            kind: match c.take_u8()? {
                0 => MoveKind::Enter,
                1 => MoveKind::Advance,
                2 => MoveKind::Eject,
                _ => return None,
            },
            port: PortId::from_index(c.take_u32()? as usize),
        },
        KIND_TRANSITION => {
            let msg = MsgId::from_index(c.take_u32()? as usize);
            let code = c.take_u8()?;
            let port = c.take_u32()?;
            let status = match code {
                0 => TravelStatus::Pending,
                1 => TravelStatus::Active,
                2 => TravelStatus::Blocked(PortId::from_index(port as usize)),
                3 => TravelStatus::Delivered,
                _ => return None,
            };
            WalEvent::Transition { msg, status }
        }
        KIND_FREED_PORT => WalEvent::FreedPort {
            port: PortId::from_index(c.take_u32()? as usize),
        },
        KIND_EDGE_ADD => WalEvent::EdgeAdd {
            msg: MsgId::from_index(c.take_u32()? as usize),
            wants: PortId::from_index(c.take_u32()? as usize),
            on: match c.take_u32()? {
                NONE_SENTINEL => None,
                v => Some(MsgId::from_index(v as usize)),
            },
        },
        KIND_EDGE_REMOVE => WalEvent::EdgeRemove {
            msg: MsgId::from_index(c.take_u32()? as usize),
        },
        KIND_DETECTION => WalEvent::Detection {
            step: c.take_u64()?,
            msgs: c.take_msgs()?,
            ports: c.take_ports()?,
        },
        KIND_RECOVERY => WalEvent::Recovery {
            action: match c.take_u8()? {
                0 => RecoveryAction::Abort,
                1 => RecoveryAction::Reroute,
                2 => RecoveryAction::Restart,
                _ => return None,
            },
            msgs: c.take_msgs()?,
        },
        KIND_SNAPSHOT => {
            let step = c.take_u64()?;
            let n = c.take_u32()? as usize;
            if n > c.remaining() {
                return None;
            }
            let inflight = (0..n).map(|_| c.take_image()).collect::<Option<Vec<_>>>()?;
            let n = c.take_u32()? as usize;
            if n > c.remaining() {
                return None;
            }
            let arrived = (0..n).map(|_| c.take_image()).collect::<Option<Vec<_>>>()?;
            WalEvent::Snapshot {
                step,
                inflight,
                arrived,
            }
        }
        KIND_RUN_END => WalEvent::RunEnd {
            outcome: match c.take_u8()? {
                0 => Outcome::Evacuated,
                1 => Outcome::Deadlock,
                2 => Outcome::StepLimit,
                _ => return None,
            },
            steps: c.take_u64()?,
        },
        _ => return None,
    };
    if c.done() {
        Some(ev)
    } else {
        None
    }
}

enum Sink {
    Mem(Vec<u8>),
    File(BufWriter<File>),
}

/// Append-only WAL writer over a file or an in-memory buffer, counting the
/// bytes and records written (the `wal_bytes`/`wal_records` metrics).
pub struct WalWriter {
    sink: Sink,
    bytes: u64,
    records: u64,
    frame: Vec<u8>,
    payload: Vec<u8>,
}

impl WalWriter {
    /// A writer appending to an in-memory buffer (tests, benches).
    pub fn in_memory() -> WalWriter {
        let mut w = WalWriter {
            sink: Sink::Mem(Vec::new()),
            bytes: 0,
            records: 0,
            frame: Vec::new(),
            payload: Vec::new(),
        };
        w.write_header().expect("in-memory writes cannot fail");
        w
    }

    /// A writer creating `path` (and its parent directories).
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn create(path: &Path) -> io::Result<WalWriter> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut w = WalWriter {
            sink: Sink::File(BufWriter::new(File::create(path)?)),
            bytes: 0,
            records: 0,
            frame: Vec::new(),
            payload: Vec::new(),
        };
        w.write_header()?;
        Ok(w)
    }

    fn write_header(&mut self) -> io::Result<()> {
        let mut header = Vec::with_capacity(12);
        header.extend_from_slice(&WAL_MAGIC);
        put_u32(&mut header, WAL_VERSION);
        self.write_all(&header)
    }

    fn write_all(&mut self, data: &[u8]) -> io::Result<()> {
        match &mut self.sink {
            Sink::Mem(buf) => buf.extend_from_slice(data),
            Sink::File(f) => f.write_all(data)?,
        }
        self.bytes += data.len() as u64;
        Ok(())
    }

    /// Appends one framed, checksummed record.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn append(&mut self, ev: &WalEvent) -> io::Result<()> {
        // Both scratch buffers are reused across appends: recording logs
        // hundreds of thousands of small records, so per-record allocation
        // would dominate the encoding cost.
        let mut payload = std::mem::take(&mut self.payload);
        let kind = encode_into(ev, &mut payload);
        let checksum = fnv1a(kind, &payload);
        self.frame.clear();
        put_u32(&mut self.frame, payload.len() as u32);
        self.frame.push(kind);
        self.frame.extend_from_slice(&payload);
        put_u64(&mut self.frame, checksum);
        self.payload = payload;
        let frame = std::mem::take(&mut self.frame);
        let result = self.write_all(&frame);
        self.frame = frame;
        self.records += 1;
        result
    }

    /// Total bytes written so far (header included).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Records appended so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Flushes buffered file output.
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn flush(&mut self) -> io::Result<()> {
        match &mut self.sink {
            Sink::Mem(_) => Ok(()),
            Sink::File(f) => f.flush(),
        }
    }

    /// Finishes the log: flushes, and returns the buffer for in-memory
    /// writers (`None` for file-backed ones).
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn finish(mut self) -> io::Result<Option<Vec<u8>>> {
        self.flush()?;
        match self.sink {
            Sink::Mem(buf) => Ok(Some(buf)),
            Sink::File(_) => Ok(None),
        }
    }
}

/// A decoded log: every intact record, plus a description of trailing
/// damage when the input did not end cleanly at a record boundary.
#[derive(Clone, Debug)]
pub struct WalLog {
    /// Format version from the header.
    pub version: u32,
    /// All intact records, in append order.
    pub events: Vec<WalEvent>,
    /// `Some(description)` when the tail was truncated or corrupt; the
    /// events up to that point are still valid.
    pub damage: Option<String>,
}

/// Decodes a WAL from bytes. Never panics: damaged input yields the intact
/// prefix plus a [`WalLog::damage`] description.
pub fn read_wal_bytes(data: &[u8]) -> WalLog {
    let mut log = WalLog {
        version: 0,
        events: Vec::new(),
        damage: None,
    };
    if data.len() < 12 || data[..8] != WAL_MAGIC {
        log.damage = Some("missing GENOCWAL header".into());
        return log;
    }
    log.version = u32::from_le_bytes(data[8..12].try_into().unwrap());
    if log.version != WAL_VERSION {
        log.damage = Some(format!(
            "unsupported WAL version {} (reader speaks {})",
            log.version, WAL_VERSION
        ));
        return log;
    }
    let mut pos = 12;
    while pos < data.len() {
        let record_start = pos;
        let Some(len_bytes) = data.get(pos..pos + 4) else {
            log.damage = Some(format!("truncated frame length at byte {record_start}"));
            return log;
        };
        let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
        pos += 4;
        let Some(&kind) = data.get(pos) else {
            log.damage = Some(format!("truncated record kind at byte {record_start}"));
            return log;
        };
        pos += 1;
        let Some(payload) = data.get(pos..pos + len) else {
            log.damage = Some(format!(
                "truncated payload at byte {record_start} (want {len} bytes)"
            ));
            return log;
        };
        pos += len;
        let Some(sum_bytes) = data.get(pos..pos + 8) else {
            log.damage = Some(format!("truncated checksum at byte {record_start}"));
            return log;
        };
        let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
        pos += 8;
        if stored != fnv1a(kind, payload) {
            log.damage = Some(format!("checksum mismatch at byte {record_start}"));
            return log;
        }
        match decode(kind, payload) {
            Some(ev) => log.events.push(ev),
            None => {
                log.damage = Some(format!(
                    "malformed record (kind {kind}) at byte {record_start}"
                ));
                return log;
            }
        }
    }
    log
}

/// Reads and decodes a WAL file (see [`read_wal_bytes`]).
///
/// # Errors
///
/// Propagates I/O errors; decode damage is reported in [`WalLog::damage`],
/// not as an error.
pub fn read_wal(path: &Path) -> io::Result<WalLog> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    Ok(read_wal_bytes(&data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<WalEvent> {
        vec![
            WalEvent::RunStart {
                version: WAL_VERSION,
                seed: 42,
                meta: Some(WalMeta {
                    meta: InstanceMeta::new(RoutingKind::Xy, 3, 3, 2),
                    switching: SwitchingKind::Wormhole,
                }),
            },
            WalEvent::Inject {
                msg: MsgId::from_index(0),
                flits: 3,
                route: vec![PortId::from_index(1), PortId::from_index(4)],
            },
            WalEvent::StepBegin { step: 0 },
            WalEvent::Move {
                msg: MsgId::from_index(0),
                flit: 0,
                kind: MoveKind::Enter,
                port: PortId::from_index(1),
            },
            WalEvent::Transition {
                msg: MsgId::from_index(0),
                status: TravelStatus::Blocked(PortId::from_index(4)),
            },
            WalEvent::FreedPort {
                port: PortId::from_index(4),
            },
            WalEvent::EdgeAdd {
                msg: MsgId::from_index(0),
                wants: PortId::from_index(4),
                on: Some(MsgId::from_index(1)),
            },
            WalEvent::EdgeRemove {
                msg: MsgId::from_index(0),
            },
            WalEvent::Detection {
                step: 7,
                msgs: vec![MsgId::from_index(0), MsgId::from_index(1)],
                ports: vec![PortId::from_index(4), PortId::from_index(5)],
            },
            WalEvent::Recovery {
                action: RecoveryAction::Abort,
                msgs: vec![MsgId::from_index(1)],
            },
            WalEvent::Snapshot {
                step: 8,
                inflight: vec![TravelImage {
                    id: MsgId::from_index(0),
                    route: vec![PortId::from_index(1), PortId::from_index(4)],
                    flits: vec![FlitPos::InNetwork(1), FlitPos::InNetwork(0)],
                }],
                arrived: vec![TravelImage {
                    id: MsgId::from_index(2),
                    route: vec![PortId::from_index(9)],
                    flits: vec![FlitPos::Delivered],
                }],
            },
            WalEvent::RunEnd {
                outcome: Outcome::Deadlock,
                steps: 8,
            },
        ]
    }

    #[test]
    fn round_trips_every_record_kind() {
        let events = sample_events();
        let mut w = WalWriter::in_memory();
        for ev in &events {
            w.append(ev).unwrap();
        }
        assert_eq!(w.records_written(), events.len() as u64);
        let bytes = w.finish().unwrap().unwrap();
        let log = read_wal_bytes(&bytes);
        assert_eq!(log.version, WAL_VERSION);
        assert!(log.damage.is_none(), "{:?}", log.damage);
        assert_eq!(log.events, events);
    }

    #[test]
    fn truncation_is_detected_not_fatal() {
        let events = sample_events();
        let mut w = WalWriter::in_memory();
        for ev in &events {
            w.append(ev).unwrap();
        }
        let bytes = w.finish().unwrap().unwrap();
        for cut in 0..bytes.len() {
            let log = read_wal_bytes(&bytes[..cut]);
            assert!(log.events.len() <= events.len());
            assert_eq!(log.events, events[..log.events.len()]);
            if log.damage.is_none() {
                // A cut is silent only when it lands exactly on a record
                // boundary (a shorter-but-clean log): re-encoding the
                // decoded prefix must reproduce every byte we kept.
                let mut w = WalWriter::in_memory();
                for ev in &log.events {
                    w.append(ev).unwrap();
                }
                assert_eq!(w.bytes_written(), cut as u64, "silent cut at {cut}");
            }
        }
    }

    #[test]
    fn corruption_is_detected_not_fatal() {
        let events = sample_events();
        let mut w = WalWriter::in_memory();
        for ev in &events {
            w.append(ev).unwrap();
        }
        let mut bytes = w.finish().unwrap().unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5a;
        let log = read_wal_bytes(&bytes);
        assert!(log.damage.is_some());
    }

    #[test]
    fn rejects_foreign_headers() {
        assert!(read_wal_bytes(b"not a wal").damage.is_some());
        assert!(read_wal_bytes(&[]).damage.is_some());
    }
}
