//! Feeding the WAL and metrics from a live run: [`Recorder`] implements the
//! runner's [`RunObserver`] (the passive sibling of `DetectorHook`), and
//! [`ObservedEngine`] wraps a `DetectionEngine` so detector firings and
//! recovery actions land in the same log.

use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;
use std::time::Instant;

use genoc_core::blocking::block_events;
use genoc_core::config::Config;
use genoc_core::error::{Error, Result};
use genoc_core::interpreter::Outcome;
use genoc_core::kernel::{Transition, TravelStatus};
use genoc_core::network::Network;
use genoc_core::routing::RoutingFunction;
use genoc_core::switching::SwitchingPolicy;
use genoc_core::trace::{Event, Zone};
use genoc_core::travel::Travel;
use genoc_core::{MsgId, PortId};
use genoc_detect::engine::{DetectionEngine, EngineOptions};
use genoc_sim::deadlock_hunt::Hunt;
use genoc_sim::runner::{simulate_observed, DetectorHook, RunObserver, SimOptions};

use crate::wal::{RecoveryAction, TravelImage, WalEvent, WalMeta, WalWriter, WAL_VERSION};

/// A WAL writer shared between a [`Recorder`] and an [`ObservedEngine`], so
/// per-step evidence and detector firings interleave in one log.
pub type SharedWal = Rc<RefCell<WalWriter>>;

/// Wraps a [`WalWriter`] for sharing (see [`SharedWal`]).
pub fn shared(writer: WalWriter) -> SharedWal {
    Rc::new(RefCell::new(writer))
}

fn io_err(what: &str, e: std::io::Error) -> Error {
    Error::Invariant(format!("WAL {what} failed: {e}"))
}

/// Tuning knobs for a [`Recorder`].
#[derive(Clone, Copy, Debug)]
pub struct RecorderOptions {
    /// Write a full state snapshot every this many steps (seek granularity
    /// for the replayer). Snapshots are also written after every recovery
    /// mutation, regardless of this cadence.
    pub snapshot_every: u64,
}

impl Default for RecorderOptions {
    fn default() -> Self {
        RecorderOptions {
            snapshot_every: 256,
        }
    }
}

/// Aggregate counters a [`Recorder`] accumulates; the per-scenario metrics
/// surface (campaign.json, Prometheus snapshot) is filled from this.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ObsSummary {
    /// Switching steps observed.
    pub steps: u64,
    /// Flit movements observed (0 when the WAL is disabled and no trace was
    /// recorded).
    pub moves: u64,
    /// Messages that arrived.
    pub arrived_msgs: u64,
    /// Flits delivered by the end of the run.
    pub delivered_flits: u64,
    /// Delivered flits per wall-clock second over the whole run.
    pub flits_per_sec: f64,
    /// Peak size of the blocked set (wait-for edges alive at once).
    pub blocked_peak: u64,
    /// Bytes appended to the WAL (0 when disabled).
    pub wal_bytes: u64,
    /// Records appended to the WAL (0 when disabled).
    pub wal_records: u64,
}

/// A [`RunObserver`] that tracks metrics on every run and, when constructed
/// with a [`SharedWal`], streams the kernel's full evidence log into it:
/// injections, per-step flit moves, status transitions, freed ports, and
/// derived wait-for edge add/remove records, with periodic state snapshots
/// for seekable replay.
pub struct Recorder {
    wal: Option<SharedWal>,
    options: RecorderOptions,
    seed: u64,
    meta: Option<WalMeta>,
    // Dense by message index: `on_step` touches this once per transition in
    // the hot loop, so it must be an array poke, not a hash probe.
    blocked: Vec<bool>,
    blocked_count: u64,
    blocked_peak: u64,
    steps: u64,
    moves: u64,
    arrived_msgs: u64,
    delivered_flits: u64,
    started: Instant,
    elapsed_secs: f64,
}

impl Recorder {
    /// A metrics-only recorder (no WAL, near-zero overhead).
    pub fn new(seed: u64) -> Recorder {
        Recorder::build(None, seed, None, RecorderOptions::default())
    }

    /// A recorder streaming into `wal`; `meta` (when known) is embedded in
    /// the `RunStart` record so `bin/replay` can rebuild the instance.
    pub fn with_wal(wal: SharedWal, seed: u64, meta: Option<WalMeta>) -> Recorder {
        Recorder::build(Some(wal), seed, meta, RecorderOptions::default())
    }

    /// Full-control constructor.
    pub fn build(
        wal: Option<SharedWal>,
        seed: u64,
        meta: Option<WalMeta>,
        options: RecorderOptions,
    ) -> Recorder {
        Recorder {
            wal,
            options,
            seed,
            meta,
            blocked: Vec::new(),
            blocked_count: 0,
            blocked_peak: 0,
            steps: 0,
            moves: 0,
            arrived_msgs: 0,
            delivered_flits: 0,
            started: Instant::now(),
            elapsed_secs: 0.0,
        }
    }

    fn append(&self, ev: &WalEvent) -> Result<()> {
        if let Some(wal) = &self.wal {
            wal.borrow_mut()
                .append(ev)
                .map_err(|e| io_err("append", e))?;
        }
        Ok(())
    }

    /// Marks `m` blocked; true if it was not blocked before.
    fn block(&mut self, m: MsgId) -> bool {
        let i = m.index();
        if self.blocked.len() <= i {
            self.blocked.resize(i + 1, false);
        }
        let fresh = !self.blocked[i];
        if fresh {
            self.blocked[i] = true;
            self.blocked_count += 1;
        }
        fresh
    }

    /// Clears `m`'s blocked mark; true if it was blocked.
    fn unblock(&mut self, m: MsgId) -> bool {
        let was = self.blocked.get(m.index()).copied().unwrap_or(false);
        if was {
            self.blocked[m.index()] = false;
            self.blocked_count -= 1;
        }
        was
    }

    fn snapshot(&self, cfg: &Config, step: u64) -> Result<()> {
        if self.wal.is_none() {
            return Ok(());
        }
        self.append(&WalEvent::Snapshot {
            step,
            inflight: cfg.travels().iter().map(image_of).collect(),
            arrived: cfg.arrived().iter().map(image_of).collect(),
        })
    }

    /// The counters accumulated so far (complete once the run ended).
    pub fn summary(&self) -> ObsSummary {
        let secs = if self.elapsed_secs > 0.0 {
            self.elapsed_secs
        } else {
            self.started.elapsed().as_secs_f64()
        };
        let (wal_bytes, wal_records) = match &self.wal {
            Some(wal) => {
                let w = wal.borrow();
                (w.bytes_written(), w.records_written())
            }
            None => (0, 0),
        };
        ObsSummary {
            steps: self.steps,
            moves: self.moves,
            arrived_msgs: self.arrived_msgs,
            delivered_flits: self.delivered_flits,
            flits_per_sec: if secs > 0.0 {
                self.delivered_flits as f64 / secs
            } else {
                0.0
            },
            blocked_peak: self.blocked_peak,
            wal_bytes,
            wal_records,
        }
    }
}

/// Snapshot image of one travel.
fn image_of(t: &Travel) -> TravelImage {
    TravelImage {
        id: t.id(),
        route: t.route().to_vec(),
        flits: t.flit_positions().collect(),
    }
}

/// Maps a trace movement event to its WAL record.
fn move_record(e: &Event) -> WalEvent {
    use genoc_core::moves::MoveKind;
    let (kind, port) = match (e.from, e.to) {
        (Zone::Source, Zone::Port(p)) => (MoveKind::Enter, p),
        (Zone::Port(p), Zone::Delivered) => (MoveKind::Eject, p),
        (_, Zone::Port(p)) => (MoveKind::Advance, p),
        // A flit never moves Source→Delivered or Delivered→anything; encode
        // defensively as an eject at a synthetic port rather than panicking
        // inside an observer.
        _ => (MoveKind::Eject, PortId::from_index(0)),
    };
    WalEvent::Move {
        msg: e.msg,
        flit: e.flit,
        kind,
        port,
    }
}

impl RunObserver for Recorder {
    fn wants_moves(&self) -> bool {
        self.wal.is_some()
    }

    fn on_run_start(&mut self, _net: &dyn Network, cfg: &Config) -> Result<()> {
        self.started = Instant::now();
        if self.wal.is_none() {
            return Ok(());
        }
        self.append(&WalEvent::RunStart {
            version: WAL_VERSION,
            seed: self.seed,
            meta: self.meta,
        })?;
        for t in cfg.travels() {
            self.append(&WalEvent::Inject {
                msg: t.id(),
                flits: t.flit_count() as u32,
                route: t.route().to_vec(),
            })?;
        }
        Ok(())
    }

    fn on_step(
        &mut self,
        cfg: &Config,
        step: u64,
        transitions: &[Transition],
        freed: &[PortId],
        moves: &[Event],
        arrived: &[MsgId],
    ) -> Result<()> {
        self.steps += 1;
        self.moves += moves.len() as u64;
        self.arrived_msgs += arrived.len() as u64;
        match self.wal.clone() {
            Some(wal) => {
                // One borrow for the whole step's record burst.
                let mut w = wal.borrow_mut();
                let put = |w: &mut WalWriter, ev: &WalEvent| {
                    w.append(ev).map_err(|e| io_err("append", e))
                };
                put(&mut w, &WalEvent::StepBegin { step })?;
                for e in moves {
                    put(&mut w, &move_record(e))?;
                }
                for t in transitions {
                    put(
                        &mut w,
                        &WalEvent::Transition {
                            msg: t.msg,
                            status: t.status,
                        },
                    )?;
                    match t.status {
                        TravelStatus::Blocked(wants) => {
                            if self.block(t.msg) {
                                let on = cfg.state().port(wants).owner();
                                put(
                                    &mut w,
                                    &WalEvent::EdgeAdd {
                                        msg: t.msg,
                                        wants,
                                        on,
                                    },
                                )?;
                            }
                        }
                        TravelStatus::Active | TravelStatus::Delivered => {
                            if self.unblock(t.msg) {
                                put(&mut w, &WalEvent::EdgeRemove { msg: t.msg })?;
                            }
                        }
                        TravelStatus::Pending => {}
                    }
                }
                for &p in freed {
                    put(&mut w, &WalEvent::FreedPort { port: p })?;
                }
                drop(w);
                let done = step + 1;
                if self.options.snapshot_every > 0
                    && done.is_multiple_of(self.options.snapshot_every)
                {
                    self.snapshot(cfg, done)?;
                }
            }
            None => {
                // Metrics-only: just keep the blocked census current.
                for t in transitions {
                    match t.status {
                        TravelStatus::Blocked(_) => {
                            self.block(t.msg);
                        }
                        TravelStatus::Active | TravelStatus::Delivered => {
                            self.unblock(t.msg);
                        }
                        TravelStatus::Pending => {}
                    }
                }
            }
        }
        self.blocked_peak = self.blocked_peak.max(self.blocked_count);
        Ok(())
    }

    fn on_mutation(&mut self, cfg: &Config, steps_done: u64) -> Result<()> {
        // A recovery mutation voids transition-derived state: re-derive the
        // blocked set from the configuration and mark the log with a
        // snapshot barrier (replay resumes from here).
        self.blocked.iter_mut().for_each(|b| *b = false);
        self.blocked_count = 0;
        for ev in block_events(cfg) {
            self.block(ev.msg);
        }
        self.blocked_peak = self.blocked_peak.max(self.blocked_count);
        self.snapshot(cfg, steps_done)
    }

    fn on_run_end(&mut self, outcome: Outcome, steps: u64, cfg: &Config) -> Result<()> {
        self.elapsed_secs = self.started.elapsed().as_secs_f64();
        self.arrived_msgs = cfg.arrived().len() as u64;
        self.delivered_flits = cfg.delivered_flits();
        self.append(&WalEvent::RunEnd { outcome, steps })?;
        if let Some(wal) = &self.wal {
            wal.borrow_mut().flush().map_err(|e| io_err("flush", e))?;
        }
        Ok(())
    }
}

/// A [`DetectorHook`] wrapping a [`DetectionEngine`] so that every detector
/// firing and recovery action is mirrored into the shared WAL, interleaved
/// with the [`Recorder`]'s per-step records at exactly the step they
/// happened.
pub struct ObservedEngine {
    engine: DetectionEngine,
    wal: Option<SharedWal>,
    detections_seen: usize,
    aborted_seen: usize,
    rerouted_seen: usize,
    restarts_seen: u64,
}

impl ObservedEngine {
    /// Wraps `engine`; `wal` is typically the same [`SharedWal`] the run's
    /// [`Recorder`] writes to.
    pub fn new(engine: DetectionEngine, wal: Option<SharedWal>) -> ObservedEngine {
        ObservedEngine {
            engine,
            wal,
            detections_seen: 0,
            aborted_seen: 0,
            rerouted_seen: 0,
            restarts_seen: 0,
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &DetectionEngine {
        &self.engine
    }

    /// Unwraps the engine (e.g. to build a post-run summary).
    pub fn into_engine(self) -> DetectionEngine {
        self.engine
    }

    /// Step of the first detection, if any fired.
    pub fn first_detection_step(&self) -> Option<u64> {
        self.engine.detections().first().map(|d| d.step)
    }

    fn sync(&mut self) -> Result<()> {
        let Some(wal) = &self.wal else {
            return Ok(());
        };
        let mut wal = wal.borrow_mut();
        let mut append = |ev: &WalEvent| wal.append(ev).map_err(|e| io_err("append", e));
        for d in &self.engine.detections()[self.detections_seen..] {
            append(&WalEvent::Detection {
                step: d.step,
                msgs: d.cycle.msgs.clone(),
                ports: d.cycle.ports.clone(),
            })?;
        }
        self.detections_seen = self.engine.detections().len();
        let stats = self.engine.stats();
        if stats.aborted.len() > self.aborted_seen {
            append(&WalEvent::Recovery {
                action: RecoveryAction::Abort,
                msgs: stats.aborted[self.aborted_seen..].to_vec(),
            })?;
            self.aborted_seen = stats.aborted.len();
        }
        if stats.rerouted.len() > self.rerouted_seen {
            append(&WalEvent::Recovery {
                action: RecoveryAction::Reroute,
                msgs: stats.rerouted[self.rerouted_seen..].to_vec(),
            })?;
            self.rerouted_seen = stats.rerouted.len();
        }
        for _ in self.restarts_seen..stats.restarts {
            append(&WalEvent::Recovery {
                action: RecoveryAction::Restart,
                msgs: Vec::new(),
            })?;
        }
        self.restarts_seen = stats.restarts;
        Ok(())
    }
}

impl DetectorHook for ObservedEngine {
    fn after_step(&mut self, net: &dyn Network, cfg: &mut Config, step: u64) -> Result<()> {
        self.engine.after_step(net, cfg, step)?;
        self.sync()
    }

    fn after_kernel_step(
        &mut self,
        net: &dyn Network,
        cfg: &mut Config,
        transitions: &[Transition],
        step: u64,
    ) -> Result<bool> {
        let mutated = self.engine.after_kernel_step(net, cfg, transitions, step)?;
        self.sync()?;
        Ok(mutated)
    }

    fn on_deadlock(&mut self, net: &dyn Network, cfg: &mut Config, step: u64) -> Result<bool> {
        let recovered = self.engine.on_deadlock(net, cfg, step)?;
        self.sync()?;
        Ok(recovered)
    }

    fn on_drained(&mut self, net: &dyn Network, cfg: &mut Config, step: u64) -> Result<bool> {
        let continued = self.engine.on_drained(net, cfg, step)?;
        self.sync()?;
        Ok(continued)
    }
}

/// Re-runs a [`Hunt`]'s workload with a detect-only engine and a recording
/// [`Recorder`], writing the WAL to `path` and stamping
/// [`Hunt::wal`] on success — the hunt's witness becomes replayable by file
/// instead of by rerun.
///
/// # Errors
///
/// Propagates WAL I/O and simulation errors, and reports
/// [`Error::Invariant`] if the re-run does not end in a deadlock (a hunt
/// workload is deterministic, so it always should).
pub fn record_hunt(
    net: &dyn Network,
    routing: &dyn RoutingFunction,
    policy: &mut dyn SwitchingPolicy,
    hunt: &mut Hunt,
    meta: Option<WalMeta>,
    path: &Path,
) -> Result<ObsSummary> {
    let wal = shared(WalWriter::create(path).map_err(|e| io_err("create", e))?);
    let mut recorder = Recorder::with_wal(Rc::clone(&wal), hunt.seed, meta);
    let mut hook = ObservedEngine::new(
        DetectionEngine::detector(EngineOptions {
            heuristic_threshold: None,
            ..EngineOptions::default()
        }),
        Some(Rc::clone(&wal)),
    );
    let options = SimOptions {
        max_steps: hunt.steps + 16,
        ..SimOptions::default()
    };
    let result = simulate_observed(
        net,
        routing,
        policy,
        &hunt.specs,
        &options,
        &mut hook,
        &mut recorder,
    )?;
    if result.run.outcome != Outcome::Deadlock {
        return Err(Error::Invariant(format!(
            "hunt workload (seed {}) did not replay to a deadlock: {:?}",
            hunt.seed, result.run.outcome
        )));
    }
    hunt.wal = Some(path.to_path_buf());
    Ok(recorder.summary())
}
