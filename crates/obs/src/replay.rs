//! Deterministic replay: reconstructing the full [`Config`] at any step of
//! a recorded run from the nearest snapshot plus the move tail — so every
//! campaign failure and deadlock-hunt witness is replayable by
//! `(wal, step-offset)` instead of rerun.
//!
//! The equivalence contract (pinned by `tests/obs_replay.rs` on every
//! smoke-matrix scenario): `replay_to(net, events, n)` is *identical* to a
//! fresh rerun of the recorded workload capped at `n` steps — same travel
//! positions and routes, hence the same kernel status classification and
//! the same wait-for graph (both are pure functions of the configuration).

use genoc_core::config::Config;
use genoc_core::error::{Error, Result};
use genoc_core::interpreter::Outcome;
use genoc_core::moves::MoveKind;
use genoc_core::network::Network;
use genoc_core::travel::Travel;
use genoc_core::MsgId;

use crate::wal::{TravelImage, WalEvent, WalMeta};

/// The run header's `(seed, meta)`, when the log has one.
pub fn run_start(events: &[WalEvent]) -> Option<(u64, Option<WalMeta>)> {
    events.iter().find_map(|e| match e {
        WalEvent::RunStart { seed, meta, .. } => Some((*seed, *meta)),
        _ => None,
    })
}

/// The recorded `(outcome, steps)` footer, when the run ended cleanly.
pub fn recorded_outcome(events: &[WalEvent]) -> Option<(Outcome, u64)> {
    events.iter().rev().find_map(|e| match e {
        WalEvent::RunEnd { outcome, steps } => Some((*outcome, *steps)),
        _ => None,
    })
}

/// Total switching steps the log covers: the footer's count when present,
/// otherwise one past the last step marker.
pub fn final_steps(events: &[WalEvent]) -> u64 {
    if let Some((_, steps)) = recorded_outcome(events) {
        return steps;
    }
    events
        .iter()
        .rev()
        .find_map(|e| match e {
            WalEvent::StepBegin { step } => Some(step + 1),
            _ => None,
        })
        .unwrap_or(0)
}

fn travel_of(net: &dyn Network, img: &TravelImage) -> Result<Travel> {
    let mut t = Travel::from_route(net, img.id, img.route.clone(), img.flits.len())?;
    for (i, &pos) in img.flits.iter().enumerate() {
        t.set_flit_pos(i, pos);
    }
    Ok(t)
}

/// The initial (all-pending) configuration from the log's `Inject` records.
///
/// # Errors
///
/// Reports [`Error::Invariant`] when the log has no injections or a route
/// does not fit `net`.
pub fn initial_config(net: &dyn Network, events: &[WalEvent]) -> Result<Config> {
    let mut travels = Vec::new();
    for e in events {
        match e {
            WalEvent::Inject { msg, flits, route } => {
                travels.push(Travel::from_route(
                    net,
                    *msg,
                    route.clone(),
                    *flits as usize,
                )?);
            }
            WalEvent::StepBegin { .. } => break,
            _ => {}
        }
    }
    if travels.is_empty() {
        return Err(Error::Invariant(
            "WAL has no Inject records to rebuild the initial configuration".into(),
        ));
    }
    Config::from_travels(net, travels)
}

/// Reconstructs the configuration after `steps` completed switching steps:
/// seeks to the last snapshot at or before `steps`, then applies the
/// recorded flit moves of the remaining steps (draining arrivals at every
/// step boundary, exactly as the runner does).
///
/// # Errors
///
/// Reports [`Error::Invariant`] on logs without injections/snapshots
/// covering the range, or whose moves are inconsistent with the
/// configuration (a damaged or cross-wired log).
pub fn replay_to(net: &dyn Network, events: &[WalEvent], steps: u64) -> Result<Config> {
    // Seek: the latest snapshot not past the target. A snapshot written
    // after a recovery mutation supersedes earlier records entirely — the
    // intervening moves were already applied to the snapshotted state.
    let mut base: Option<(usize, &WalEvent)> = None;
    for (i, e) in events.iter().enumerate() {
        if let WalEvent::Snapshot { step, .. } = e {
            if *step <= steps {
                base = Some((i, e));
            }
        }
    }
    let (start, mut cfg) = match base {
        Some((
            i,
            WalEvent::Snapshot {
                inflight, arrived, ..
            },
        )) => {
            let mut travels = Vec::with_capacity(inflight.len() + arrived.len());
            for img in inflight.iter().chain(arrived.iter()) {
                travels.push(travel_of(net, img)?);
            }
            (i + 1, Config::from_travels(net, travels)?)
        }
        _ => (0, initial_config(net, events)?),
    };

    let mut in_step = false;
    for e in &events[start..] {
        match e {
            WalEvent::StepBegin { step } => {
                if in_step {
                    cfg.drain_arrived();
                }
                if *step >= steps {
                    in_step = false;
                    break;
                }
                in_step = true;
            }
            WalEvent::Move {
                msg, flit, kind, ..
            } if in_step => {
                let i = cfg
                    .travels()
                    .iter()
                    .position(|t| t.id() == *msg)
                    .ok_or_else(|| {
                        Error::Invariant(format!("WAL moves unknown travel {msg} during replay"))
                    })?;
                let flit = *flit as usize;
                match kind {
                    MoveKind::Enter => cfg.enter_flit(i, flit)?,
                    MoveKind::Advance => cfg.advance_flit(i, flit)?,
                    MoveKind::Eject => cfg.eject_flit(i, flit)?,
                }
            }
            _ => {}
        }
    }
    if in_step {
        cfg.drain_arrived();
    }
    Ok(cfg)
}

fn describe_msgs(msgs: &[MsgId]) -> String {
    msgs.iter()
        .map(|m| m.to_string())
        .collect::<Vec<_>>()
        .join(" → ")
}

/// One human line per event, for post-mortem printing.
pub fn describe(e: &WalEvent) -> String {
    match e {
        WalEvent::RunStart { seed, meta, .. } => match meta {
            Some(m) => format!(
                "run start: seed {seed}, {} + {:?}",
                m.meta.instance_name(),
                m.switching
            ),
            None => format!("run start: seed {seed}"),
        },
        WalEvent::Inject { msg, flits, route } => {
            format!("inject {msg}: {flits} flits over {} hops", route.len())
        }
        WalEvent::StepBegin { step } => format!("── step {step}"),
        WalEvent::Move {
            msg,
            flit,
            kind,
            port,
        } => format!("{msg}.{flit} {} {port}", kind.label()),
        WalEvent::Transition { msg, status } => format!("{msg} ⇒ {status:?}"),
        WalEvent::FreedPort { port } => format!("{port} freed"),
        WalEvent::EdgeAdd { msg, wants, on } => match on {
            Some(owner) => format!("edge + {msg} waits for {wants} (held by {owner})"),
            None => format!("edge + {msg} waits for {wants}"),
        },
        WalEvent::EdgeRemove { msg } => format!("edge - {msg} released"),
        WalEvent::Detection { step, msgs, .. } => {
            format!("DEADLOCK detected at step {step}: {}", describe_msgs(msgs))
        }
        WalEvent::Recovery { action, msgs } => match action {
            crate::wal::RecoveryAction::Abort => format!("recovery: abort {}", describe_msgs(msgs)),
            crate::wal::RecoveryAction::Reroute => {
                format!("recovery: reroute {}", describe_msgs(msgs))
            }
            crate::wal::RecoveryAction::Restart => "recovery: drain and restart".into(),
        },
        WalEvent::Snapshot {
            step,
            inflight,
            arrived,
        } => format!(
            "snapshot at step {step}: {} in flight, {} arrived",
            inflight.len(),
            arrived.len()
        ),
        WalEvent::RunEnd { outcome, steps } => format!("run end: {outcome:?} after {steps} steps"),
    }
}

/// The post-mortem tail: the last `k` evidence lines (moves, transitions,
/// edges, freed ports, step markers) leading up to the first detector
/// firing — or to the end of the log when nothing fired — followed by the
/// detection/footer lines themselves.
pub fn tail_lines(events: &[WalEvent], k: usize) -> Vec<String> {
    let cut = events
        .iter()
        .position(|e| matches!(e, WalEvent::Detection { .. }))
        .unwrap_or(events.len());
    let evidence: Vec<&WalEvent> = events[..cut]
        .iter()
        .filter(|e| {
            matches!(
                e,
                WalEvent::StepBegin { .. }
                    | WalEvent::Move { .. }
                    | WalEvent::Transition { .. }
                    | WalEvent::FreedPort { .. }
                    | WalEvent::EdgeAdd { .. }
                    | WalEvent::EdgeRemove { .. }
                    | WalEvent::Recovery { .. }
            )
        })
        .collect();
    let start = evidence.len().saturating_sub(k);
    let mut lines: Vec<String> = evidence[start..].iter().map(|e| describe(e)).collect();
    for e in &events[cut..] {
        if matches!(e, WalEvent::Detection { .. } | WalEvent::RunEnd { .. }) {
            lines.push(describe(e));
        }
    }
    lines
}
