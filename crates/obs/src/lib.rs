//! # genoc-obs
//!
//! Observability for GeNoC-rs: the kernel already produces exactly the
//! evidence stream the paper's deadlock story runs on — status
//! [`Transition`](genoc_core::kernel::Transition)s (a `Blocked(p)`
//! transition *is* a wait-for edge), the freed-port wake log, detector
//! firings — and this crate makes that stream durable and queryable instead
//! of rerun-only. Three layers:
//!
//! * **WAL** ([`wal`]) — an append-only binary event log per run: framed,
//!   checksummed records for injections, flit moves, status transitions,
//!   freed ports, wait-for edge add/remove, detector firings, recovery
//!   actions, and periodic full-state snapshots. Damaged or truncated tails
//!   are detected, never fatal.
//! * **Replay** ([`replay`]) — [`replay_to`] reconstructs the full
//!   [`Config`](genoc_core::config::Config) after any number of steps from
//!   the nearest snapshot plus the move tail, provably identical to a fresh
//!   rerun (the differential suite in `tests/obs_replay.rs` checks every
//!   smoke-matrix scenario). Deadlock post-mortems become "print the last K
//!   events before the cycle closed" ([`tail_lines`], `bin/replay`).
//! * **Metrics** ([`metrics`]) — a hand-rolled [`MetricsRegistry`] of
//!   counters and gauges (flits/sec, blocked-set peak, detector latency,
//!   recovery cost, WAL bytes/records), rendered as Prometheus text to a
//!   snapshot file and summarized per scenario in campaign.json.
//!
//! The capture side rides the runner's
//! [`RunObserver`](genoc_sim::RunObserver) hook — the passive sibling of
//! `DetectorHook` — via [`Recorder`], with [`ObservedEngine`] wrapping a
//! `DetectionEngine` so detections land in the same log:
//!
//! ```
//! use genoc_obs::{read_wal_bytes, replay_to, shared, Recorder, WalWriter};
//! use genoc_routing::xy::XyRouting;
//! use genoc_sim::{simulate_observed, NullHook, SimOptions};
//! use genoc_switching::wormhole::WormholePolicy;
//! use genoc_topology::mesh::Mesh;
//!
//! let mesh = Mesh::new(3, 3, 2);
//! let routing = XyRouting::new(&mesh);
//! let specs = genoc_sim::workload::transpose(&mesh, 2);
//! let wal = shared(WalWriter::in_memory());
//! let mut recorder = Recorder::with_wal(wal.clone(), 7, None);
//! let result = simulate_observed(
//!     &mesh,
//!     &routing,
//!     &mut WormholePolicy::default(),
//!     &specs,
//!     &SimOptions::default(),
//!     &mut NullHook,
//!     &mut recorder,
//! )
//! .unwrap();
//! drop(recorder);
//! let writer = std::rc::Rc::try_unwrap(wal).ok().expect("sole owner").into_inner();
//! let bytes = writer.finish().unwrap().unwrap();
//! let log = read_wal_bytes(&bytes);
//! assert!(log.damage.is_none());
//! // Any step of the run is now reconstructible without a rerun:
//! let mid = replay_to(&mesh, &log.events, result.run.steps / 2).unwrap();
//! assert!(!mid.travels().is_empty() || !mid.arrived().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod observer;
pub mod replay;
pub mod wal;

pub use crate::metrics::{MetricKind, MetricsRegistry};
pub use crate::observer::{
    record_hunt, shared, ObsSummary, ObservedEngine, Recorder, RecorderOptions, SharedWal,
};
pub use crate::replay::{
    describe, final_steps, initial_config, recorded_outcome, replay_to, run_start, tail_lines,
};
pub use crate::wal::{
    read_wal, read_wal_bytes, RecoveryAction, TravelImage, WalEvent, WalLog, WalMeta, WalWriter,
    WAL_MAGIC, WAL_VERSION,
};
