//! The exact online detector: an incrementally maintained wait-for graph.
//!
//! After every switching step the detector re-derives the blocking event of
//! each in-flight travel (`O(Σ flits)` with early exit — the same work the
//! deadlock predicate `Ω` performs, but per travel instead of globally) and
//! folds the *differences* into its wait-for graph: each blocked travel has
//! at most one out-edge, toward the owner of the port it wants, so edge
//! updates are `O(1)` and removals `O(degree)` trivially. The cycle check
//! runs only when an edge was *added* (removals cannot create cycles) and
//! delegates to [`find_wait_cycle`]'s stamped pointer chase over the
//! functional graph — the degenerate, and optimal, form of incremental SCC
//! maintenance for graphs of out-degree at most one: every vertex is visited
//! once per check, and each blocked travel belongs to at most one cycle.
//!
//! Exactness (mirroring the exact side of Verbeek–Schmaltz's verified
//! detection algorithm): a reported cycle is a set of travels each blocked on
//! the next, which under wormhole ownership can never dissolve (see
//! `genoc_core::blocking`), so the detector has *no false positives* — every
//! alarm is a genuine, permanent deadlock, reported the step it forms rather
//! than when the whole network seizes.

use genoc_core::blocking::{block_event, find_wait_cycle, WaitCycle};
use genoc_core::config::Config;
use genoc_core::kernel::{Transition, TravelStatus};
use genoc_core::{MsgId, PortId};

/// One wait-for edge: the blocked travel's wanted port and its owner.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Edge {
    wants: PortId,
    on: MsgId,
}

/// The exact online deadlock detector.
///
/// Feed it the configuration after every switching step via
/// [`observe`](ExactDetector::observe); it returns a [`WaitCycle`] whenever
/// the step completed a cycle in the wait-for graph.
#[derive(Clone, Debug, Default)]
pub struct ExactDetector {
    /// Out-edge per message id index (`None` = not blocked on an owner).
    edges: Vec<Option<Edge>>,
    /// Persistent id → travel-index map for the kernel-transition feed.
    /// Entries are validated against the configuration on every use (an
    /// id hit is proof of correctness, ids being unique among live
    /// travels), so the map survives across calls and is rebuilt only
    /// when a structural change — a travel removal shifting indices, or a
    /// recovery going through [`reset`](ExactDetector::reset) — actually
    /// falsified a lookup.
    index_map: Vec<usize>,
    /// How many times the index map was rebuilt (a removal/reset tax, not
    /// a per-call one; exposed for the overhead benchmarks).
    rebuilds: u64,
}

impl ExactDetector {
    /// Creates a detector with an empty wait-for graph.
    pub fn new() -> Self {
        ExactDetector::default()
    }

    fn ensure(&mut self, id: MsgId) {
        if id.index() >= self.edges.len() {
            self.edges.resize(id.index() + 1, None);
        }
    }

    /// Folds the current blocking events of `cfg` into the wait-for graph
    /// and returns a cycle if one newly closed. Edges of travels that moved,
    /// arrived, or were removed are dropped; the cycle chase runs only when
    /// an edge was added.
    pub fn observe(&mut self, cfg: &Config) -> Option<WaitCycle> {
        let mut added = false;
        for i in 0..cfg.travels().len() {
            let id = cfg.travel(i).id();
            self.ensure(id);
            let new = block_event(cfg, i).and_then(|e| {
                e.on.map(|owner| Edge {
                    wants: e.wants,
                    on: owner,
                })
            });
            let slot = &mut self.edges[id.index()];
            if *slot != new {
                added |= new.is_some();
                *slot = new;
            }
        }
        if added {
            // The edges just refreshed mirror the configuration exactly, so
            // the chase over the live wait-for structure is authoritative —
            // stale entries of departed travels are unreachable from it.
            find_wait_cycle(cfg)
        } else {
            None
        }
    }

    /// Folds a kernel step's status [`Transition`]s into the wait-for graph
    /// and returns a cycle if one newly closed.
    ///
    /// This is the incremental feed the kernel's wake-list bookkeeping
    /// provides for free: a travel transitions to
    /// [`TravelStatus::Blocked`] exactly when its blocking event first
    /// holds, stays parked while the event is unchanged (the owner of the
    /// wanted port cannot change without a wake), and transitions to
    /// `Active`/`Delivered` exactly when the event dissolves. So only the
    /// transitioned travels need their edges re-derived — `O(transitions)`
    /// instead of [`observe`](ExactDetector::observe)'s `O(travels)` rescan
    /// — and the cycle chase still runs only when an edge was added,
    /// reporting the same cycles at the same steps.
    pub fn apply_kernel_transitions(
        &mut self,
        cfg: &Config,
        transitions: &[Transition],
    ) -> Option<WaitCycle> {
        // The id → travel-index map persists across calls; each lookup is
        // validated in O(1) against the configuration, and the map is
        // rebuilt (at most once per call) only when a removal shifted the
        // indices under it. Steady-state cost is O(transitions), with no
        // per-call O(travels) rebuild.
        let mut rebuilt = false;
        let mut added = false;
        for tr in transitions {
            self.ensure(tr.msg);
            let new = match tr.status {
                TravelStatus::Blocked(_) => {
                    let mut index = self.lookup_valid(cfg, tr.msg);
                    if index.is_none() && !rebuilt {
                        // A parking travel is live, so a miss means the
                        // map went stale: rebuild once and retry.
                        self.rebuild_index(cfg);
                        rebuilt = true;
                        index = self.lookup_valid(cfg, tr.msg);
                    }
                    index.and_then(|i| block_event(cfg, i)).and_then(|e| {
                        e.on.map(|owner| Edge {
                            wants: e.wants,
                            on: owner,
                        })
                    })
                }
                TravelStatus::Pending | TravelStatus::Active | TravelStatus::Delivered => None,
            };
            // A travel that parks may re-derive the same edge its *stale*
            // slot still holds (e.g. after a recovery mutated the
            // configuration without transitions), so the chase is gated on
            // the transition itself, not on the slot changing — exactly
            // when the legacy per-step rescan would have chased.
            added |= new.is_some();
            self.edges[tr.msg.index()] = new;
        }
        if added {
            find_wait_cycle(cfg)
        } else {
            None
        }
    }

    /// A validated map lookup: a hit is authoritative (ids are unique
    /// among live travels), a miss means absent-or-stale.
    fn lookup_valid(&self, cfg: &Config, id: MsgId) -> Option<usize> {
        self.index_map
            .get(id.index())
            .copied()
            .filter(|&i| i != usize::MAX)
            .filter(|&i| cfg.travels().get(i).is_some_and(|t| t.id() == id))
    }

    /// Re-derives the id → travel-index map from the configuration.
    fn rebuild_index(&mut self, cfg: &Config) {
        let slots = cfg
            .travels()
            .iter()
            .map(|t| t.id().index())
            .max()
            .map_or(0, |m| m + 1);
        self.index_map.clear();
        self.index_map.resize(slots, usize::MAX);
        for (i, t) in cfg.travels().iter().enumerate() {
            self.index_map[t.id().index()] = i;
        }
        self.rebuilds += 1;
    }

    /// How many times the persistent index map had to be rebuilt so far —
    /// the cost a travel removal, reroute, or resync pays; steady-state
    /// steps pay none.
    pub fn index_rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Clears the graph and invalidates the index map (used when recovery
    /// rebuilt, rerouted, or resynced the configuration).
    pub fn reset(&mut self) {
        self.edges.iter_mut().for_each(|e| *e = None);
        self.index_map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genoc_core::interpreter::Outcome;
    use genoc_core::spec::MessageSpec;
    use genoc_core::switching::SwitchingPolicy;
    use genoc_core::trace::Trace;
    use genoc_routing::mixed::MixedXyYxRouting;
    use genoc_routing::xy::XyRouting;
    use genoc_sim::workload::bit_complement;
    use genoc_switching::wormhole::WormholePolicy;
    use genoc_topology::mesh::Mesh;

    /// Step the policy manually, observing after every step; returns the
    /// step of the first detection (if any) and the step Ω first held.
    fn drive(
        mesh: &Mesh,
        routing: &dyn genoc_core::routing::RoutingFunction,
        specs: &[MessageSpec],
    ) -> (Option<u64>, Option<u64>, Outcome) {
        let mut cfg = Config::from_specs(mesh, routing, specs).unwrap();
        let mut policy = WormholePolicy::default();
        let mut detector = ExactDetector::new();
        let mut trace = Trace::new(false);
        let mut detected = None;
        for step in 0..10_000u64 {
            if cfg.is_evacuated() {
                return (detected, None, Outcome::Evacuated);
            }
            if policy.is_deadlock(mesh, &cfg) {
                return (detected, Some(step), Outcome::Deadlock);
            }
            policy.step(mesh, &mut cfg, &mut trace).unwrap();
            cfg.drain_arrived();
            if detected.is_none() {
                if let Some(cycle) = detector.observe(&cfg) {
                    assert!(!cycle.msgs.is_empty());
                    detected = Some(step);
                }
            } else {
                detector.observe(&cfg);
            }
        }
        (detected, None, Outcome::StepLimit)
    }

    #[test]
    fn detects_the_corner_storm_no_later_than_omega() {
        let mesh = Mesh::new(2, 2, 1);
        let routing = MixedXyYxRouting::new(&mesh);
        let specs = bit_complement(&mesh, 4);
        let (detected, omega, outcome) = drive(&mesh, &routing, &specs);
        assert_eq!(outcome, Outcome::Deadlock);
        let detected = detected.expect("the storm's cycle must be detected");
        assert!(detected <= omega.unwrap(), "{detected} vs {omega:?}");
    }

    #[test]
    fn silent_on_deadlock_free_routing() {
        let mesh = Mesh::new(2, 2, 1);
        let routing = XyRouting::new(&mesh);
        let specs = bit_complement(&mesh, 4);
        let (detected, _, outcome) = drive(&mesh, &routing, &specs);
        assert_eq!(outcome, Outcome::Evacuated);
        assert_eq!(detected, None, "XY never deadlocks");
    }

    #[test]
    fn kernel_feed_reuses_the_index_map_across_calls() {
        let mesh = Mesh::new(2, 2, 1);
        let routing = MixedXyYxRouting::new(&mesh);
        let specs = bit_complement(&mesh, 4);
        let mut cfg = Config::from_specs(&mesh, &routing, &specs).unwrap();
        let mut policy = WormholePolicy::default();
        let mut trace = Trace::new(false);
        let mut detector = ExactDetector::new();
        let mut steps = 0u64;
        let mut cycle = None;
        for _ in 0..10_000 {
            if policy.is_deadlock(&mesh, &cfg) {
                break;
            }
            policy.step(&mesh, &mut cfg, &mut trace).unwrap();
            cfg.drain_arrived();
            steps += 1;
            // Synthesize the kernel's park notifications from the blocking
            // predicate: every currently blocked travel parks this step.
            let transitions: Vec<Transition> = (0..cfg.travels().len())
                .filter_map(|i| {
                    block_event(&cfg, i).map(|e| Transition {
                        msg: cfg.travel(i).id(),
                        status: TravelStatus::Blocked(e.wants),
                    })
                })
                .collect();
            if let Some(c) = detector.apply_kernel_transitions(&cfg, &transitions) {
                cycle = Some(c);
                break;
            }
        }
        assert!(cycle.is_some(), "the storm's cycle must be detected");
        let rebuilds = detector.index_rebuilds();
        assert!(rebuilds >= 1, "the first park must build the map");
        assert!(
            rebuilds < steps,
            "the map must persist across calls: {rebuilds} rebuilds in {steps} steps"
        );
        // A reset invalidates the map: the next park rebuilds exactly once.
        detector.reset();
        assert!(detector.index_map.is_empty());
    }

    #[test]
    fn reset_clears_the_graph() {
        let mesh = Mesh::new(2, 2, 1);
        let routing = MixedXyYxRouting::new(&mesh);
        let specs = bit_complement(&mesh, 4);
        let mut cfg = Config::from_specs(&mesh, &routing, &specs).unwrap();
        let mut policy = WormholePolicy::default();
        let mut detector = ExactDetector::new();
        let mut trace = Trace::new(false);
        let mut cycle = None;
        for _ in 0..10_000 {
            if policy.is_deadlock(&mesh, &cfg) {
                break;
            }
            policy.step(&mesh, &mut cfg, &mut trace).unwrap();
            cfg.drain_arrived();
            if let Some(c) = detector.observe(&cfg) {
                cycle = Some(c);
                break;
            }
        }
        assert!(cycle.is_some());
        detector.reset();
        assert!(detector.edges.iter().all(Option::is_none));
    }
}
