//! Escape routes: reserved resources blocked travels can be re-routed onto.
//!
//! The escape-channel recovery of `remote-control`-style schemes reserves a
//! virtual channel that normal traffic never routes through; when a deadlock
//! is detected, cycle members are diverted onto it. This module defines the
//! topology-facing trait and the ring instance: on a [`Ring`] built with two
//! or more virtual channels whose router keeps to channel 0 (e.g. plain
//! shortest-path routing), the highest channel is free by construction and
//! serves as the escape.

use genoc_core::network::{Direction, Network};
use genoc_core::travel::Travel;
use genoc_core::{NodeId, PortId};
use genoc_topology::ring::{Ring, RingDir, RingPortKind};

/// A provider of escape routes on topologies that expose reserved escape
/// resources (typically a virtual channel normal traffic never uses).
pub trait EscapeRoute {
    /// Short display name, e.g. `"ring-escape-vc"`.
    fn name(&self) -> String;

    /// A full replacement route for the blocked `travel`: its current
    /// claimed prefix followed by a continuation through the escape
    /// resources to its destination. `None` when no escape exists from the
    /// travel's current position.
    fn escape_route(&self, net: &dyn Network, travel: &Travel) -> Option<Vec<PortId>>;
}

/// Escape provider for a multi-VC [`Ring`]: diverts blocked travels onto the
/// highest virtual channel, circulating clockwise to the destination.
///
/// Clockwise-only circulation trades latency for simplicity: the escape path
/// from any node to any other is unique and never revisits an escape port,
/// so a diverted worm can always be expressed as a valid (duplicate-free)
/// route.
#[derive(Clone, Debug)]
pub struct RingEscape {
    ring: Ring,
    vc: usize,
}

impl RingEscape {
    /// Builds the escape provider for a ring instance, reserving its highest
    /// virtual channel.
    ///
    /// # Panics
    ///
    /// Panics if the ring has fewer than two virtual channels (nothing to
    /// reserve).
    pub fn new(ring: &Ring) -> Self {
        assert!(
            ring.vc_count() >= 2,
            "an escape channel needs at least two virtual channels"
        );
        RingEscape {
            vc: ring.vc_count() - 1,
            ring: ring.clone(),
        }
    }

    /// The reserved virtual-channel index.
    pub fn vc(&self) -> usize {
        self.vc
    }

    /// Escape continuation from `node` to the local out-port of `dest`,
    /// clockwise on the reserved channel.
    fn suffix_from(&self, node: usize, dest: NodeId) -> Vec<PortId> {
        let n = self.ring.node_count();
        let d = dest.index();
        let mut suffix = Vec::new();
        if node != d {
            suffix.push(
                self.ring
                    .ring_port(node, RingDir::Cw, self.vc, Direction::Out),
            );
            let mut m = (node + 1) % n;
            while m != d {
                suffix.push(self.ring.ring_port(m, RingDir::Cw, self.vc, Direction::In));
                suffix.push(self.ring.ring_port(m, RingDir::Cw, self.vc, Direction::Out));
                m = (m + 1) % n;
            }
            suffix.push(self.ring.ring_port(d, RingDir::Cw, self.vc, Direction::In));
        }
        suffix.push(self.ring.local_out(dest));
        suffix
    }
}

impl EscapeRoute for RingEscape {
    fn name(&self) -> String {
        format!("ring-escape-vc{}", self.vc)
    }

    fn escape_route(&self, _net: &dyn Network, travel: &Travel) -> Option<Vec<PortId>> {
        let head = travel.head_route_index()?;
        let head_port = travel.route()[head];
        let info = self.ring.info(head_port);
        // Only in-ports can divert: the continuation of an out-port is fixed
        // by the physical link it already committed to.
        if info.dir != Direction::In {
            return None;
        }
        // Never escape from the escape channel itself (a second diversion
        // would revisit its ports).
        if matches!(info.kind, RingPortKind::Ring { vc, .. } if vc == self.vc) {
            return None;
        }
        let mut route = travel.route()[..=head].to_vec();
        route.extend(self.suffix_from(info.node, travel.dest_node()));
        Some(route)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genoc_core::config::Config;
    use genoc_core::spec::MessageSpec;
    use genoc_core::MsgId;
    use genoc_routing::ring::RingShortestRouting;

    #[test]
    fn escape_runs_clockwise_on_the_reserved_channel() {
        let ring = Ring::with_vcs(6, 2, 1);
        let routing = RingShortestRouting::new(&ring);
        let specs = [MessageSpec::new(
            NodeId::from_index(0),
            NodeId::from_index(2),
            2,
        )];
        let mut cfg = Config::from_specs(&ring, &routing, &specs).unwrap();
        let escape = RingEscape::new(&ring);
        cfg.enter_flit(0, 0).unwrap();
        cfg.advance_flit(0, 0).unwrap();
        // Head at node 0's cw0 *out* port: committed to the link, no escape.
        let t = cfg.travel_by_id(MsgId::from_index(0)).unwrap();
        assert_eq!(ring.info(t.current()).dir, Direction::Out);
        assert!(escape.escape_route(&ring, t).is_none());
        // One more hop: head at node 1's cw0 *in* port, diversion possible.
        cfg.advance_flit(0, 0).unwrap();
        let t = cfg.travel_by_id(MsgId::from_index(0)).unwrap();
        let head = t.head_route_index().unwrap();
        assert_eq!(ring.info(t.route()[head]).dir, Direction::In);
        let route = escape.escape_route(&ring, t).expect("in-port heads divert");
        assert_eq!(&route[..=head], &t.route()[..=head]);
        assert_eq!(*route.last().unwrap(), ring.local_out(t.dest_node()));
        for &p in &route[head + 1..route.len() - 1] {
            assert_eq!(
                ring.info(p).kind,
                RingPortKind::Ring {
                    dir: RingDir::Cw,
                    vc: 1
                },
                "escape continuation must stay on the reserved channel"
            );
        }
        // A rerouted travel must pass its own validation.
        let mut t2 = t.clone();
        t2.reroute(&ring, route).unwrap();
        t2.check_invariants().unwrap();
    }

    #[test]
    fn pending_travels_have_no_escape() {
        let ring = Ring::with_vcs(4, 2, 1);
        let routing = RingShortestRouting::new(&ring);
        let specs = [MessageSpec::new(
            NodeId::from_index(0),
            NodeId::from_index(1),
            1,
        )];
        let cfg = Config::from_specs(&ring, &routing, &specs).unwrap();
        let escape = RingEscape::new(&ring);
        assert!(escape
            .escape_route(&ring, cfg.travel_by_id(MsgId::from_index(0)).unwrap())
            .is_none());
    }

    #[test]
    #[should_panic(expected = "two virtual channels")]
    fn single_vc_ring_is_rejected() {
        let _ = RingEscape::new(&Ring::new(4, 1));
    }
}
