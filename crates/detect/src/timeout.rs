//! The timeout-threshold heuristic detector.
//!
//! The cheap comparator to the exact wait-for detector, mirroring the
//! exact-vs-heuristic split of Verbeek–Schmaltz: keep one stall counter per
//! in-flight message, reset it whenever the message moves a flit, and raise
//! an alarm once some counter crosses a threshold. Per step this is `O(T)`
//! counter arithmetic with no graph at all — but it trades precision both
//! ways: a congested (not deadlocked) message can cross the threshold (a
//! *false alarm*), and a genuine deadlock is only reported `threshold` steps
//! after it forms (bounded *latency*). It can never miss a deadlock outright:
//! deadlocked messages stall forever, so their counters cross any finite
//! threshold — the zero-false-negatives property the verification cross-check
//! (`genoc_verif::detect_check`) re-validates against the exact detector.

use genoc_core::config::Config;
use genoc_core::travel::Travel;
use genoc_core::MsgId;

/// Default stall threshold: comfortably above the longest legitimate stall
/// of the registry instances, small enough for useful detection latency.
pub const DEFAULT_THRESHOLD: u64 = 32;

/// Per-message stall bookkeeping of the heuristic detector.
#[derive(Clone, Copy, Debug)]
struct Stall {
    potential: u64,
    stalled: u64,
}

/// The timeout-threshold heuristic deadlock detector.
#[derive(Clone, Debug)]
pub struct TimeoutDetector {
    threshold: u64,
    stalls: Vec<Option<Stall>>,
}

impl TimeoutDetector {
    /// Creates a detector that suspects a message after it has made no
    /// progress for `threshold` consecutive observations.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero (every message would be suspect on
    /// arrival).
    pub fn new(threshold: u64) -> Self {
        assert!(threshold > 0, "a zero threshold suspects everything");
        TimeoutDetector {
            threshold,
            stalls: Vec::new(),
        }
    }

    /// The configured stall threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Observes the configuration after a step (or after an idle period —
    /// observing an unchanged configuration advances every stall counter)
    /// and returns the messages currently suspected of being deadlocked, in
    /// travel order. Empty while no counter has crossed the threshold.
    pub fn observe(&mut self, cfg: &Config) -> Vec<MsgId> {
        let mut suspects = Vec::new();
        for t in cfg.travels() {
            let id = t.id();
            if id.index() >= self.stalls.len() {
                self.stalls.resize(id.index() + 1, None);
            }
            let potential = Travel::progress_potential(t);
            let slot = &mut self.stalls[id.index()];
            let stalled = match *slot {
                Some(s) if s.potential == potential => s.stalled + 1,
                _ => 0,
            };
            *slot = Some(Stall { potential, stalled });
            if stalled >= self.threshold {
                suspects.push(id);
            }
        }
        suspects
    }

    /// Clears all stall counters (used when recovery rebuilt the
    /// configuration).
    pub fn reset(&mut self) {
        self.stalls.iter_mut().for_each(|s| *s = None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genoc_core::spec::MessageSpec;
    use genoc_core::NodeId;
    use genoc_routing::xy::XyRouting;
    use genoc_topology::mesh::Mesh;

    fn still_config() -> (Mesh, Config) {
        let mesh = Mesh::new(2, 2, 1);
        let routing = XyRouting::new(&mesh);
        let specs = [MessageSpec::new(
            NodeId::from_index(0),
            NodeId::from_index(3),
            2,
        )];
        let cfg = Config::from_specs(&mesh, &routing, &specs).unwrap();
        (mesh, cfg)
    }

    #[test]
    fn stall_counters_cross_the_threshold_on_an_idle_config() {
        let (_, cfg) = still_config();
        let mut d = TimeoutDetector::new(4);
        // First observation initialises; alarms fire once a message has
        // been seen unchanged for `threshold` further observations.
        for _ in 0..4 {
            assert!(d.observe(&cfg).is_empty());
        }
        let suspects = d.observe(&cfg);
        assert_eq!(suspects, vec![MsgId::from_index(0)]);
    }

    #[test]
    fn movement_resets_the_counter() {
        let (_, mut cfg) = still_config();
        let mut d = TimeoutDetector::new(3);
        for _ in 0..3 {
            d.observe(&cfg);
        }
        cfg.enter_flit(0, 0).unwrap();
        assert!(d.observe(&cfg).is_empty(), "movement must reset the stall");
        for _ in 0..2 {
            assert!(d.observe(&cfg).is_empty());
        }
        assert!(!d.observe(&cfg).is_empty());
        d.reset();
        assert!(d.observe(&cfg).is_empty());
    }

    #[test]
    #[should_panic(expected = "zero threshold")]
    fn zero_threshold_is_rejected() {
        let _ = TimeoutDetector::new(0);
    }
}
