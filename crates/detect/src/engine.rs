//! The detection engine: detectors + recovery policy behind the runner hook.
//!
//! [`DetectionEngine`] implements [`genoc_sim::DetectorHook`], so plugging
//! online detection (and optionally recovery) into a simulation is one call:
//!
//! ```
//! use genoc_detect::{DetectionEngine, EngineOptions, AbortAndEvacuate};
//! use genoc_routing::mixed::MixedXyYxRouting;
//! use genoc_sim::{simulate_hooked, workload, SimOptions};
//! use genoc_switching::wormhole::WormholePolicy;
//! use genoc_topology::mesh::Mesh;
//!
//! # fn main() -> Result<(), genoc_core::Error> {
//! let mesh = Mesh::new(2, 2, 1);
//! let routing = MixedXyYxRouting::new(&mesh);
//! let specs = workload::bit_complement(&mesh, 4); // deadlocks undetected
//! let mut engine =
//!     DetectionEngine::with_policy(EngineOptions::default(), Box::new(AbortAndEvacuate));
//! let result = simulate_hooked(
//!     &mesh,
//!     &routing,
//!     &mut WormholePolicy::default(),
//!     &specs,
//!     &SimOptions::default(),
//!     &mut engine,
//! )?;
//! assert!(result.evacuated(), "recovery saves the run");
//! let summary = engine.summary(&result);
//! assert_eq!(summary.aborted.len(), 1, "at the price of one message");
//! # Ok(())
//! # }
//! ```

use std::collections::VecDeque;

use genoc_core::blocking::{find_wait_cycle, WaitCycle};
use genoc_core::config::Config;
use genoc_core::error::{Error, Result};
use genoc_core::kernel::Transition;
use genoc_core::network::Network;
use genoc_core::travel::Travel;
use genoc_sim::runner::DetectorHook;
use genoc_sim::stats::RecoverySummary;
use genoc_sim::SimResult;

use crate::exact::ExactDetector;
use crate::recovery::RecoveryPolicy;
use crate::timeout::{TimeoutDetector, DEFAULT_THRESHOLD};

/// Which detectors the engine runs and how hard it may try to recover.
#[derive(Clone, Copy, Debug)]
pub struct EngineOptions {
    /// Run the exact wait-for detector (drives recovery when a policy is
    /// installed).
    pub exact: bool,
    /// Run the timeout heuristic with this stall threshold as a comparator
    /// (`None` disables it).
    pub heuristic_threshold: Option<u64>,
    /// Give up (and let the run end as a deadlock) after this many recovery
    /// invocations — the safety valve against recovery that never converges.
    pub max_recoveries: u64,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            exact: true,
            heuristic_threshold: Some(DEFAULT_THRESHOLD),
            max_recoveries: 1024,
        }
    }
}

/// One detection: when it happened and the cycle that was caught.
#[derive(Clone, Debug)]
pub struct Detection {
    /// Switching step after which the cycle was observed.
    pub step: u64,
    /// The detected wait-for cycle.
    pub cycle: WaitCycle,
}

/// Online deadlock detection (and optional recovery) as a runner hook.
pub struct DetectionEngine {
    options: EngineOptions,
    exact: Option<ExactDetector>,
    heuristic: Option<TimeoutDetector>,
    policy: Option<Box<dyn RecoveryPolicy>>,
    staged: VecDeque<Travel>,
    detections: Vec<Detection>,
    stats: RecoverySummary,
}

impl std::fmt::Debug for DetectionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectionEngine")
            .field("options", &self.options)
            .field("policy", &self.policy.as_ref().map(|p| p.name()))
            .field("detections", &self.detections.len())
            .finish_non_exhaustive()
    }
}

impl DetectionEngine {
    /// A detect-only engine: observes and records, never intervenes.
    pub fn detector(options: EngineOptions) -> Self {
        DetectionEngine {
            exact: options.exact.then(ExactDetector::new),
            heuristic: options.heuristic_threshold.map(TimeoutDetector::new),
            options,
            policy: None,
            staged: VecDeque::new(),
            detections: Vec::new(),
            stats: RecoverySummary::default(),
        }
    }

    /// An engine that recovers through `policy` whenever the exact detector
    /// reports a cycle.
    pub fn with_policy(options: EngineOptions, policy: Box<dyn RecoveryPolicy>) -> Self {
        let mut engine = DetectionEngine::detector(EngineOptions {
            // Recovery needs the exact detector's cycles.
            exact: true,
            ..options
        });
        engine.policy = Some(policy);
        engine
    }

    /// Every detection so far, in order.
    pub fn detections(&self) -> &[Detection] {
        &self.detections
    }

    /// Whether any deadlock was detected.
    pub fn fired(&self) -> bool {
        !self.detections.is_empty()
    }

    /// The engine's running statistics as they stand mid-run. Delivery
    /// counts are only filled in by [`summary`](DetectionEngine::summary);
    /// use this to diff recovery actions (aborts, reroutes, restarts)
    /// between steps without a finished [`SimResult`].
    pub fn stats(&self) -> &RecoverySummary {
        &self.stats
    }

    /// The run statistics, completed with the result's delivery counts.
    pub fn summary(&self, result: &SimResult) -> RecoverySummary {
        let mut s = self.stats.clone();
        s.delivered = result.run.config.arrived().len() as u64;
        s.total_steps = result.run.steps;
        s
    }

    fn record_detection(&mut self, step: u64, cycle: WaitCycle) {
        self.stats.exact_detections += 1;
        self.stats.first_exact_step.get_or_insert(step);
        self.detections.push(Detection { step, cycle });
    }

    /// Applies the recovery policy to `cycle`, then keeps re-checking for
    /// further cycles (several independent ones can coexist) until none
    /// remains or the recovery budget runs out. Returns whether anything was
    /// recovered.
    fn recover(
        &mut self,
        net: &dyn Network,
        cfg: &mut Config,
        step: u64,
        cycle: WaitCycle,
    ) -> Result<bool> {
        let Some(mut policy) = self.policy.take() else {
            return Ok(false);
        };
        let result = self.recover_with(net, cfg, step, cycle, policy.as_mut());
        self.policy = Some(policy);
        result
    }

    fn recover_with(
        &mut self,
        net: &dyn Network,
        cfg: &mut Config,
        step: u64,
        mut cycle: WaitCycle,
        policy: &mut dyn RecoveryPolicy,
    ) -> Result<bool> {
        let mut acted = false;
        loop {
            if self.stats.recoveries >= self.options.max_recoveries {
                return Ok(acted);
            }
            self.stats.recoveries += 1;
            let outcome = policy.recover(net, cfg, &cycle)?;
            if !outcome.acted() {
                return Err(Error::Invariant(format!(
                    "recovery policy {} did not act on a detected cycle",
                    policy.name()
                )));
            }
            acted = true;
            self.stats.note_aborted(outcome.aborted);
            self.stats.note_rerouted(outcome.rerouted);
            if outcome.restarted {
                self.stats.restarts += 1;
                self.staged.extend(outcome.staged);
                // The configuration was rebuilt wholesale; stale detector
                // state would mis-diff against it.
                if let Some(d) = self.exact.as_mut() {
                    d.reset();
                }
                if let Some(h) = self.heuristic.as_mut() {
                    h.reset();
                }
            }
            match find_wait_cycle(cfg) {
                Some(next) => {
                    self.record_detection(step, next.clone());
                    cycle = next;
                }
                None => return Ok(true),
            }
        }
    }

    /// Runs the detectors on the configuration as it stands after `step`,
    /// applying recovery to any exact detection. The heuristic observes (and
    /// a first alarm is classified as true/false) *before* recovery mutates
    /// the configuration, so an alarm on a cycle the exact detector is about
    /// to repair still counts as genuine.
    fn handle(&mut self, net: &dyn Network, cfg: &mut Config, step: u64) -> Result<()> {
        self.observe_heuristic(cfg, step);
        if let Some(detector) = self.exact.as_mut() {
            if let Some(cycle) = detector.observe(cfg) {
                self.record_detection(step, cycle.clone());
                self.recover(net, cfg, step, cycle)?;
            }
        }
        Ok(())
    }

    /// Kernel-driven variant of [`handle`](DetectionEngine::handle): the
    /// exact detector folds the kernel's status transitions into its
    /// wait-for graph directly (a `Blocked(p)` transition *is* a wait-for
    /// edge) instead of re-deriving every travel's blocking event. Returns
    /// whether recovery mutated the configuration.
    fn handle_kernel(
        &mut self,
        net: &dyn Network,
        cfg: &mut Config,
        transitions: &[Transition],
        step: u64,
    ) -> Result<bool> {
        self.observe_heuristic(cfg, step);
        let mut mutated = false;
        if let Some(detector) = self.exact.as_mut() {
            if let Some(cycle) = detector.apply_kernel_transitions(cfg, transitions) {
                self.record_detection(step, cycle.clone());
                mutated = self.recover(net, cfg, step, cycle)?;
            }
        }
        Ok(mutated)
    }

    fn observe_heuristic(&mut self, cfg: &Config, step: u64) {
        if let Some(heuristic) = self.heuristic.as_mut() {
            let suspects = heuristic.observe(cfg);
            if !suspects.is_empty() && self.stats.first_heuristic_step.is_none() {
                self.stats.first_heuristic_step = Some(step);
                if find_wait_cycle(cfg).is_none() {
                    self.stats.heuristic_false_alarms += 1;
                }
            }
        }
    }
}

impl DetectorHook for DetectionEngine {
    fn after_step(&mut self, net: &dyn Network, cfg: &mut Config, step: u64) -> Result<()> {
        self.handle(net, cfg, step)
    }

    fn after_kernel_step(
        &mut self,
        net: &dyn Network,
        cfg: &mut Config,
        transitions: &[Transition],
        step: u64,
    ) -> Result<bool> {
        self.handle_kernel(net, cfg, transitions, step)
    }

    fn on_deadlock(&mut self, net: &dyn Network, cfg: &mut Config, step: u64) -> Result<bool> {
        // The global predicate Ω can hold before any step ran (hand-built
        // configurations) or for blockages the per-step detector recovered
        // only partially; record the cycle if it is new, then recover.
        if let Some(cycle) = find_wait_cycle(cfg) {
            let known = self
                .detections
                .last()
                .is_some_and(|d| d.cycle.msgs == cycle.msgs);
            if !known {
                self.record_detection(step, cycle.clone());
            }
            self.recover(net, cfg, step, cycle)
        } else {
            // Deadlocked without a wormhole wait-for cycle (e.g. stricter
            // admission rules): nothing this engine can do.
            Ok(false)
        }
    }

    fn on_drained(&mut self, _net: &dyn Network, cfg: &mut Config, _step: u64) -> Result<bool> {
        // Serialized re-injection after a drain-and-restart: one travel at a
        // time, so the replay cannot re-create the deadlock.
        match self.staged.pop_front() {
            Some(travel) => {
                cfg.push_travel(travel)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::{AbortAndEvacuate, DrainAll};
    use genoc_core::interpreter::Outcome;
    use genoc_routing::mixed::MixedXyYxRouting;
    use genoc_sim::workload::bit_complement;
    use genoc_sim::{simulate, simulate_hooked, SimOptions};
    use genoc_switching::wormhole::WormholePolicy;
    use genoc_topology::mesh::Mesh;

    fn storm() -> (Mesh, MixedXyYxRouting, Vec<genoc_core::spec::MessageSpec>) {
        let mesh = Mesh::new(2, 2, 1);
        let routing = MixedXyYxRouting::new(&mesh);
        let specs = bit_complement(&mesh, 4);
        (mesh, routing, specs)
    }

    #[test]
    fn undetected_run_deadlocks_but_abort_recovery_evacuates() {
        let (mesh, routing, specs) = storm();
        let undetected = simulate(
            &mesh,
            &routing,
            &mut WormholePolicy::default(),
            &specs,
            &SimOptions::default(),
        )
        .unwrap();
        assert_eq!(undetected.run.outcome, Outcome::Deadlock);

        let mut engine =
            DetectionEngine::with_policy(EngineOptions::default(), Box::new(AbortAndEvacuate));
        let recovered = simulate_hooked(
            &mesh,
            &routing,
            &mut WormholePolicy::default(),
            &specs,
            &SimOptions::default(),
            &mut engine,
        )
        .unwrap();
        assert_eq!(recovered.run.outcome, Outcome::Evacuated);
        let summary = engine.summary(&recovered);
        assert_eq!(summary.exact_detections as usize, engine.detections().len());
        assert!(summary.first_exact_step.is_some());
        assert_eq!(
            summary.delivered as usize + summary.aborted.len(),
            specs.len(),
            "every message either arrived or was deliberately aborted"
        );
        assert!(summary.throughput() > 0.0);
    }

    #[test]
    fn drain_all_delivers_every_message() {
        let (mesh, routing, specs) = storm();
        let mut engine = DetectionEngine::with_policy(EngineOptions::default(), Box::new(DrainAll));
        let result = simulate_hooked(
            &mesh,
            &routing,
            &mut WormholePolicy::default(),
            &specs,
            &SimOptions::default(),
            &mut engine,
        )
        .unwrap();
        assert_eq!(result.run.outcome, Outcome::Evacuated);
        let summary = engine.summary(&result);
        assert_eq!(summary.delivered as usize, specs.len(), "nothing is lost");
        assert!(summary.restarts >= 1);
        assert!(summary.aborted.is_empty());
    }

    #[test]
    fn detect_only_engine_observes_without_intervening() {
        let (mesh, routing, specs) = storm();
        let mut engine = DetectionEngine::detector(EngineOptions::default());
        let result = simulate_hooked(
            &mesh,
            &routing,
            &mut WormholePolicy::default(),
            &specs,
            &SimOptions::default(),
            &mut engine,
        )
        .unwrap();
        assert_eq!(result.run.outcome, Outcome::Deadlock);
        assert!(engine.fired());
        let first = engine.detections()[0].step;
        assert!(
            first <= result.run.steps,
            "online detection cannot be later than Ω"
        );
    }
}
