//! # genoc-detect
//!
//! Online deadlock detection and recovery for GeNoC-rs — the runtime
//! counterpart to the statically checked deadlock theorem. Where
//! `genoc-depgraph` *proves* a routing function deadlock-free (or compiles a
//! cycle into a deadlock) and `genoc-sim`'s hunter *stumbles into* deadlocks
//! after the fact, this crate watches a run as it executes, catches a
//! deadlock the step it forms, and can recover from it — so deadlock-prone
//! instances become *runnable* instead of merely diagnosable.
//!
//! Three layers:
//!
//! * **Detection** — [`ExactDetector`], an incrementally maintained wait-for
//!   graph over blocking events (no false positives, fires the step a cycle
//!   closes), and [`TimeoutDetector`], the cheap stall-counter heuristic
//!   (bounded latency, possible false alarms, no false negatives) — the
//!   exact-vs-heuristic split of Verbeek–Schmaltz's verified detection
//!   algorithm.
//! * **Recovery** — pluggable [`RecoveryPolicy`] strategies:
//!   [`AbortAndEvacuate`] (sacrifice the youngest cycle member),
//!   [`EscapeChannel`] (divert members onto a reserved escape VC via an
//!   [`EscapeRoute`] provider such as [`RingEscape`]), and [`DrainAll`]
//!   (evict everything and re-inject serially — guaranteed delivery).
//! * **Integration** — [`DetectionEngine`] implements
//!   [`genoc_sim::DetectorHook`], so any simulation becomes self-healing by
//!   swapping `simulate` for `simulate_hooked`. The engine assembles
//!   [`genoc_sim::RecoverySummary`] statistics (detection latency, recovery
//!   cost, throughput under recovery), and `genoc-verif`'s `detect_check`
//!   cross-validates every runtime-detected cycle against the static
//!   dependency graph.
//!
//! # Examples
//!
//! Watch a deadlock-prone run and catch the cycle the step it forms:
//!
//! ```
//! use genoc_detect::{DetectionEngine, EngineOptions};
//! use genoc_routing::mixed::MixedXyYxRouting;
//! use genoc_sim::{simulate_hooked, workload, SimOptions};
//! use genoc_switching::wormhole::WormholePolicy;
//! use genoc_topology::mesh::Mesh;
//!
//! # fn main() -> Result<(), genoc_core::Error> {
//! let mesh = Mesh::new(2, 2, 1);
//! let routing = MixedXyYxRouting::new(&mesh); // deliberately deadlock-prone
//! let mut engine = DetectionEngine::detector(EngineOptions::default());
//! let result = simulate_hooked(
//!     &mesh,
//!     &routing,
//!     &mut WormholePolicy::default(),
//!     &workload::bit_complement(&mesh, 4),
//!     &SimOptions::default(),
//!     &mut engine,
//! )?;
//! assert!(!result.evacuated(), "no recovery policy installed — the run deadlocks");
//! assert!(engine.fired(), "…but the detector caught the wait-for cycle");
//! let detection = &engine.detections()[0];
//! assert!(!detection.cycle.msgs.is_empty());
//! # Ok(())
//! # }
//! ```
//!
//! Install a [`RecoveryPolicy`] (see its docs for the strategy trade-offs)
//! and the same run evacuates instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod escape;
pub mod exact;
pub mod recovery;
pub mod timeout;

pub use crate::engine::{Detection, DetectionEngine, EngineOptions};
pub use crate::escape::{EscapeRoute, RingEscape};
pub use crate::exact::ExactDetector;
pub use crate::recovery::{
    AbortAndEvacuate, DrainAll, EscapeChannel, RecoveryOutcome, RecoveryPolicy,
};
pub use crate::timeout::{TimeoutDetector, DEFAULT_THRESHOLD};
