//! Pluggable recovery policies: what to do with a detected deadlock cycle.
//!
//! Three strategies, covering the classical design space:
//!
//! * [`AbortAndEvacuate`] — sacrifice the *youngest* cycle member (highest
//!   message id); the freed ports un-block its predecessor and the survivors
//!   drain by the evacuation theorem.
//! * [`EscapeChannel`] — divert cycle members onto reserved escape resources
//!   (an [`EscapeRoute`] provider); nothing is lost, at the price of longer
//!   escape paths. Falls back to one abort if no member can divert.
//! * [`DrainAll`] — evict every in-flight message back to its source and
//!   hand them to the engine for strictly serialized re-injection: maximal
//!   cost, but delivery of *everything* is guaranteed (a lone message on a
//!   duplicate-free route cannot block).

use genoc_core::blocking::WaitCycle;
use genoc_core::config::Config;
use genoc_core::error::Result;
use genoc_core::network::Network;
use genoc_core::travel::Travel;
use genoc_core::MsgId;

use crate::escape::EscapeRoute;

/// What one recovery invocation did.
#[derive(Clone, Debug, Default)]
pub struct RecoveryOutcome {
    /// Messages evicted and dropped.
    pub aborted: Vec<MsgId>,
    /// Messages diverted onto escape routes.
    pub rerouted: Vec<MsgId>,
    /// Messages evicted and staged for serialized re-injection (the engine
    /// feeds them back one at a time as the network drains).
    pub staged: Vec<Travel>,
    /// Whether this recovery was a full drain-and-restart round.
    pub restarted: bool,
}

impl RecoveryOutcome {
    /// Whether the recovery changed the configuration at all.
    pub fn acted(&self) -> bool {
        !self.aborted.is_empty() || !self.rerouted.is_empty() || self.restarted
    }
}

/// A deadlock recovery strategy, applied by the detection engine whenever
/// the exact detector reports a wait-for cycle.
///
/// # Examples
///
/// Strategies differ in what they sacrifice. On the same deadlocked corner
/// storm, [`AbortAndEvacuate`] drops one message while [`DrainAll`] delivers
/// everything at the price of serialized re-injection:
///
/// ```
/// use genoc_detect::{AbortAndEvacuate, DetectionEngine, DrainAll, EngineOptions, RecoveryPolicy};
/// use genoc_routing::mixed::MixedXyYxRouting;
/// use genoc_sim::{simulate_hooked, workload, SimOptions};
/// use genoc_switching::wormhole::WormholePolicy;
/// use genoc_topology::mesh::Mesh;
///
/// # fn main() -> Result<(), genoc_core::Error> {
/// let mesh = Mesh::new(2, 2, 1);
/// let routing = MixedXyYxRouting::new(&mesh);
/// let storm = workload::bit_complement(&mesh, 4); // deadlocks untreated
///
/// for (policy, delivered) in [
///     (Box::new(AbortAndEvacuate) as Box<dyn RecoveryPolicy>, 3),
///     (Box::new(DrainAll::default()), 4),
/// ] {
///     let name = policy.name();
///     let mut engine = DetectionEngine::with_policy(EngineOptions::default(), policy);
///     let result = simulate_hooked(
///         &mesh,
///         &routing,
///         &mut WormholePolicy::default(),
///         &storm,
///         &SimOptions::default(),
///         &mut engine,
///     )?;
///     assert!(result.evacuated(), "{name} saves the run");
///     assert_eq!(result.run.config.arrived().len(), delivered, "{name}");
/// }
/// # Ok(())
/// # }
/// ```
pub trait RecoveryPolicy {
    /// Short display name, e.g. `"abort-and-evacuate"`.
    fn name(&self) -> String;

    /// Breaks `cycle` by mutating `cfg`. Implementations must make progress
    /// possible for at least one formerly blocked message (or stage evicted
    /// travels for re-injection); the engine re-checks for remaining cycles
    /// and applies the policy again as needed.
    ///
    /// # Errors
    ///
    /// Propagates configuration-surgery failures (which indicate bugs, not
    /// properties of the workload).
    fn recover(
        &mut self,
        net: &dyn Network,
        cfg: &mut Config,
        cycle: &WaitCycle,
    ) -> Result<RecoveryOutcome>;
}

/// The youngest member of a cycle: the one with the highest message id
/// (message ids are issued in injection order).
fn youngest(cycle: &WaitCycle) -> MsgId {
    *cycle
        .msgs
        .iter()
        .max()
        .expect("wait cycles are never empty")
}

/// Abort the youngest cycle member and let the survivors evacuate.
#[derive(Clone, Copy, Debug, Default)]
pub struct AbortAndEvacuate;

impl RecoveryPolicy for AbortAndEvacuate {
    fn name(&self) -> String {
        "abort-and-evacuate".into()
    }

    fn recover(
        &mut self,
        _net: &dyn Network,
        cfg: &mut Config,
        cycle: &WaitCycle,
    ) -> Result<RecoveryOutcome> {
        let victim = youngest(cycle);
        cfg.remove_travel(victim)?;
        Ok(RecoveryOutcome {
            aborted: vec![victim],
            ..RecoveryOutcome::default()
        })
    }
}

/// Divert cycle members onto a reserved escape channel; abort the youngest
/// member only if no diversion is possible.
pub struct EscapeChannel {
    escape: Box<dyn EscapeRoute>,
}

impl EscapeChannel {
    /// Builds the policy around an escape-route provider.
    pub fn new(escape: Box<dyn EscapeRoute>) -> Self {
        EscapeChannel { escape }
    }
}

impl std::fmt::Debug for EscapeChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EscapeChannel")
            .field("escape", &self.escape.name())
            .finish()
    }
}

impl RecoveryPolicy for EscapeChannel {
    fn name(&self) -> String {
        format!("escape-channel/{}", self.escape.name())
    }

    fn recover(
        &mut self,
        net: &dyn Network,
        cfg: &mut Config,
        cycle: &WaitCycle,
    ) -> Result<RecoveryOutcome> {
        let mut outcome = RecoveryOutcome::default();
        for &m in &cycle.msgs {
            let Some(t) = cfg.travel_by_id(m) else {
                continue;
            };
            if let Some(route) = self.escape.escape_route(net, t) {
                // A diversion the validator rejects (e.g. the escape path
                // would revisit a port) is skipped, not fatal: reroute
                // validates before mutating.
                if cfg.reroute_travel(net, m, route).is_ok() {
                    outcome.rerouted.push(m);
                }
            }
        }
        if outcome.rerouted.is_empty() {
            let victim = youngest(cycle);
            cfg.remove_travel(victim)?;
            outcome.aborted.push(victim);
        }
        Ok(outcome)
    }
}

/// Evict every in-flight message and re-inject serially.
#[derive(Clone, Copy, Debug, Default)]
pub struct DrainAll;

impl RecoveryPolicy for DrainAll {
    fn name(&self) -> String {
        "drain-all".into()
    }

    fn recover(
        &mut self,
        net: &dyn Network,
        cfg: &mut Config,
        _cycle: &WaitCycle,
    ) -> Result<RecoveryOutcome> {
        let mut outcome = RecoveryOutcome {
            restarted: true,
            ..RecoveryOutcome::default()
        };
        let ids: Vec<MsgId> = cfg.travels().iter().map(|t| t.id()).collect();
        for id in ids {
            let t = cfg.remove_travel(id)?;
            // Reset to a fresh pending travel on the same route. Travels that
            // did not start at an injection port (hand-built mid-flight
            // configurations) cannot be re-staged and are dropped instead.
            match Travel::from_route(net, t.id(), t.route().to_vec(), t.flit_count()) {
                Ok(fresh) => outcome.staged.push(fresh),
                Err(_) => outcome.aborted.push(id),
            }
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genoc_core::blocking::find_wait_cycle;
    use genoc_routing::mixed::MixedXyYxRouting;
    use genoc_sim::workload::bit_complement;
    use genoc_switching::wormhole::WormholePolicy;
    use genoc_topology::mesh::Mesh;

    /// Drive the corner storm into its deadlock and return net + config.
    fn deadlocked() -> (Mesh, Config) {
        let mesh = Mesh::new(2, 2, 1);
        let routing = MixedXyYxRouting::new(&mesh);
        let specs = bit_complement(&mesh, 4);
        let hunt = genoc_sim::hunt_workload(
            &mesh,
            &routing,
            &mut WormholePolicy::default(),
            &specs,
            0,
            10_000,
        )
        .unwrap()
        .expect("the corner storm deadlocks");
        (mesh, hunt.config)
    }

    #[test]
    fn abort_frees_the_predecessor() {
        let (mesh, mut cfg) = deadlocked();
        let cycle = find_wait_cycle(&cfg).expect("deadlock has a cycle");
        let before = cfg.travels().len();
        let outcome = AbortAndEvacuate.recover(&mesh, &mut cfg, &cycle).unwrap();
        assert_eq!(outcome.aborted.len(), 1);
        assert_eq!(outcome.aborted[0], *cycle.msgs.iter().max().unwrap());
        assert_eq!(cfg.travels().len(), before - 1);
        cfg.validate(&mesh).unwrap();
        assert!(
            cfg.any_move_possible(),
            "breaking the cycle must re-enable progress"
        );
    }

    #[test]
    fn drain_all_stages_everything() {
        let (mesh, mut cfg) = deadlocked();
        let cycle = find_wait_cycle(&cfg).unwrap();
        let inflight = cfg.travels().len();
        let outcome = DrainAll.recover(&mesh, &mut cfg, &cycle).unwrap();
        assert!(outcome.restarted);
        assert_eq!(outcome.staged.len() + outcome.aborted.len(), inflight);
        assert!(cfg.is_evacuated(), "everything evicted");
        assert!(cfg.state().ports().all(|p| p.available()));
        for t in &outcome.staged {
            assert!(!t.occupies_network());
        }
    }
}
