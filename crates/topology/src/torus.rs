//! A 2D torus: a mesh with wrap-around links, with optional virtual channels.
//!
//! Dimension-order routing on a torus has cyclic channel dependencies (the
//! wrap links close each row/column into a ring), which makes the torus the
//! standard stress case for deadlock analysis; the per-dimension dateline
//! repair with two virtual channels restores acyclicity. As on the
//! [`Ring`](crate::ring::Ring), virtual channels are modelled as additional
//! ports sharing a physical link.

use genoc_core::network::{Direction, Network, PortAttrs};
use genoc_core::{NodeId, PortId};

use crate::fabric::Fabric;
use crate::mesh::Cardinal;

/// Coordinates, name, virtual channel, and direction of a torus port.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TorusPortInfo {
    /// Column of the owning node.
    pub x: usize,
    /// Row of the owning node.
    pub y: usize,
    /// Port name (`Local` ports always have `vc == 0`).
    pub card: Cardinal,
    /// Virtual-channel index.
    pub vc: usize,
    /// In or out.
    pub dir: Direction,
}

/// A `width × height` torus with `vcs` virtual channels per cardinal
/// direction.
///
/// Unlike the mesh, every node has all four cardinal ports; `North` from row
/// 0 wraps to row `height - 1`, and so on.
///
/// # Examples
///
/// ```
/// use genoc_core::network::{Direction, Network};
/// use genoc_topology::mesh::Cardinal;
/// use genoc_topology::torus::Torus;
///
/// let torus = Torus::new(3, 3, 1);
/// let e_out = torus.port(2, 0, Cardinal::East, 0, Direction::Out).unwrap();
/// let w_in = torus.port(0, 0, Cardinal::West, 0, Direction::In).unwrap();
/// assert_eq!(torus.next_in(e_out), Some(w_in), "east from the last column wraps");
/// ```
#[derive(Clone, Debug)]
pub struct Torus {
    fabric: Fabric,
    width: usize,
    height: usize,
    vcs: usize,
    /// `lookup[node][card][vc][in/out]`; `Local` only at `vc == 0`.
    lookup: Vec<Vec<Vec<[Option<PortId>; 2]>>>,
    info: Vec<TorusPortInfo>,
}

impl Torus {
    /// Builds a torus with one virtual channel.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is smaller than 2 or the capacity is zero.
    pub fn new(width: usize, height: usize, capacity: u32) -> Self {
        Torus::with_vcs(width, height, 1, capacity)
    }

    /// Builds a torus with `vcs` virtual channels per cardinal direction.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is smaller than 2, `vcs == 0`, or the capacity
    /// is zero.
    pub fn with_vcs(width: usize, height: usize, vcs: usize, capacity: u32) -> Self {
        assert!(
            width >= 2 && height >= 2,
            "torus dimensions must be at least 2"
        );
        assert!(vcs >= 1, "at least one virtual channel");
        let name = if vcs == 1 {
            format!("torus-{width}x{height}")
        } else {
            format!("torus-{width}x{height}-vc{vcs}")
        };
        let mut fabric = Fabric::builder(name);
        let node_count = width * height;
        let mut lookup = vec![vec![vec![[None; 2]; vcs]; Cardinal::ALL.len()]; node_count];
        let mut info = Vec::new();

        for y in 0..height {
            for x in 0..width {
                let n = fabric.add_node();
                let node = n.index();
                for card in Cardinal::ALL {
                    let local = card == Cardinal::Local;
                    let channel_count = if local { 1 } else { vcs };
                    #[allow(clippy::needless_range_loop)] // `vc` pairs entries across nodes
                    for vc in 0..channel_count {
                        for dir in [Direction::In, Direction::Out] {
                            let dir_name = if dir == Direction::In { "in" } else { "out" };
                            let label = if local {
                                format!("({x},{y}) L {dir_name}")
                            } else {
                                format!("({x},{y}) {}{vc} {dir_name}", card.letter())
                            };
                            let id = fabric.add_port(n, dir, local, capacity, label);
                            lookup[node][card_index(card)][vc]
                                [if dir == Direction::In { 0 } else { 1 }] = Some(id);
                            info.push(TorusPortInfo {
                                x,
                                y,
                                card,
                                vc,
                                dir,
                            });
                        }
                    }
                }
            }
        }

        let at = |x: usize, y: usize| y * width + x;
        for y in 0..height {
            for x in 0..width {
                #[allow(clippy::needless_range_loop)] // `vc` pairs entries across nodes
                for vc in 0..vcs {
                    let pairs = [
                        (Cardinal::East, at((x + 1) % width, y), Cardinal::West),
                        (
                            Cardinal::West,
                            at((x + width - 1) % width, y),
                            Cardinal::East,
                        ),
                        (
                            Cardinal::North,
                            at(x, (y + height - 1) % height),
                            Cardinal::South,
                        ),
                        (Cardinal::South, at(x, (y + 1) % height), Cardinal::North),
                    ];
                    for (card, neighbor, facing) in pairs {
                        let from = lookup[at(x, y)][card_index(card)][vc][1].unwrap();
                        let to = lookup[neighbor][card_index(facing)][vc][0].unwrap();
                        fabric.connect(from, to);
                    }
                }
            }
        }

        Torus {
            fabric: fabric.build(),
            width,
            height,
            vcs,
            lookup,
            info,
        }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of virtual channels per cardinal direction.
    pub fn vc_count(&self) -> usize {
        self.vcs
    }

    /// The node at column `x`, row `y`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn node(&self, x: usize, y: usize) -> NodeId {
        assert!(
            x < self.width && y < self.height,
            "torus coordinates out of range"
        );
        NodeId::from_index(y * self.width + x)
    }

    /// Coordinates of a node.
    pub fn node_coords(&self, n: NodeId) -> (usize, usize) {
        (n.index() % self.width, n.index() / self.width)
    }

    /// The port `⟨x, y, card, vc, dir⟩`, if it exists (`Local` requires
    /// `vc == 0`).
    pub fn port(
        &self,
        x: usize,
        y: usize,
        card: Cardinal,
        vc: usize,
        dir: Direction,
    ) -> Option<PortId> {
        if x >= self.width || y >= self.height || vc >= self.vcs.max(1) {
            return None;
        }
        let per_card = &self.lookup[y * self.width + x][card_index(card)];
        per_card
            .get(vc)
            .and_then(|slots| slots[if dir == Direction::In { 0 } else { 1 }])
    }

    /// Coordinates, name, channel, and direction of a port.
    pub fn info(&self, p: PortId) -> TorusPortInfo {
        self.info[p.index()]
    }

    /// The port named `card`/`vc`/`dir` in the same node as `p`.
    pub fn trans(&self, p: PortId, card: Cardinal, vc: usize, dir: Direction) -> Option<PortId> {
        let i = self.info(p);
        self.port(i.x, i.y, card, vc, dir)
    }
}

fn card_index(c: Cardinal) -> usize {
    match c {
        Cardinal::East => 0,
        Cardinal::West => 1,
        Cardinal::North => 2,
        Cardinal::South => 3,
        Cardinal::Local => 4,
    }
}

impl Network for Torus {
    fn port_count(&self) -> usize {
        self.fabric.port_count()
    }

    fn node_count(&self) -> usize {
        self.fabric.node_count()
    }

    fn attrs(&self, p: PortId) -> PortAttrs {
        self.fabric.attrs(p)
    }

    fn next_in(&self, p: PortId) -> Option<PortId> {
        self.fabric.next_in(p)
    }

    fn local_in(&self, n: NodeId) -> PortId {
        self.fabric.local_in(n)
    }

    fn local_out(&self, n: NodeId) -> PortId {
        self.fabric.local_out(n)
    }

    fn port_label(&self, p: PortId) -> String {
        self.fabric.port_label(p)
    }

    fn topology_name(&self) -> String {
        self.fabric.topology_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_count_matches_formula() {
        // Per node: 2 local + 8 per vc.
        assert_eq!(Torus::new(3, 3, 1).port_count(), 9 * 10);
        assert_eq!(Torus::with_vcs(3, 3, 2, 1).port_count(), 9 * 18);
    }

    #[test]
    fn wrap_links_close_the_rows_and_columns() {
        let t = Torus::new(3, 2, 1);
        let n_out = t.port(1, 0, Cardinal::North, 0, Direction::Out).unwrap();
        let target = t.info(t.next_in(n_out).unwrap());
        assert_eq!((target.x, target.y, target.card), (1, 1, Cardinal::South));
        let w_out = t.port(0, 1, Cardinal::West, 0, Direction::Out).unwrap();
        let target = t.info(t.next_in(w_out).unwrap());
        assert_eq!((target.x, target.y, target.card), (2, 1, Cardinal::East));
    }

    #[test]
    fn every_node_has_all_cardinals() {
        let t = Torus::new(2, 2, 1);
        for y in 0..2 {
            for x in 0..2 {
                for c in [
                    Cardinal::East,
                    Cardinal::West,
                    Cardinal::North,
                    Cardinal::South,
                ] {
                    assert!(t.port(x, y, c, 0, Direction::In).is_some());
                    assert!(t.port(x, y, c, 0, Direction::Out).is_some());
                }
            }
        }
    }

    #[test]
    fn local_ports_exist_only_on_vc0() {
        let t = Torus::with_vcs(2, 2, 2, 1);
        assert!(t.port(0, 0, Cardinal::Local, 0, Direction::In).is_some());
        assert!(t.port(0, 0, Cardinal::Local, 1, Direction::In).is_none());
    }

    #[test]
    fn info_round_trips() {
        let t = Torus::with_vcs(3, 2, 2, 1);
        for p in t.ports() {
            let i = t.info(p);
            assert_eq!(t.port(i.x, i.y, i.card, i.vc, i.dir), Some(p));
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn degenerate_torus_is_rejected() {
        let _ = Torus::new(1, 3, 1);
    }
}
