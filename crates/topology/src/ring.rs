//! A bidirectional ring, with optional virtual channels on the ring links.
//!
//! The ring is the smallest topology on which shortest-path routing has a
//! *cyclic* port dependency graph — the canonical deadlock-prone instance —
//! and on which the classical dateline repair (two virtual channels per
//! direction, switch at the dateline) restores acyclicity. Virtual channels
//! are modelled as additional ports sharing a physical link, which the
//! port-level formalism of the paper absorbs without extension.

use genoc_core::network::{Direction, Network, PortAttrs};
use genoc_core::{NodeId, PortId};

use crate::fabric::Fabric;

/// Travel direction around the ring.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RingDir {
    /// Clockwise: toward `(i + 1) mod n`.
    Cw,
    /// Counter-clockwise: toward `(i - 1) mod n`.
    Ccw,
}

impl RingDir {
    /// Both directions.
    pub const ALL: [RingDir; 2] = [RingDir::Cw, RingDir::Ccw];

    fn index(self) -> usize {
        match self {
            RingDir::Cw => 0,
            RingDir::Ccw => 1,
        }
    }

    /// Short label (`cw`/`ccw`).
    pub fn label(self) -> &'static str {
        match self {
            RingDir::Cw => "cw",
            RingDir::Ccw => "ccw",
        }
    }
}

/// What kind of port a ring port is.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RingPortKind {
    /// Local injection/ejection port.
    Local,
    /// Ring link port in the given direction on the given virtual channel.
    Ring {
        /// Travel direction of the link.
        dir: RingDir,
        /// Virtual-channel index, `0..vc_count`.
        vc: usize,
    },
}

/// Node index, kind, and direction of a ring port.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RingPortInfo {
    /// Owning node index.
    pub node: usize,
    /// Port kind.
    pub kind: RingPortKind,
    /// In or out.
    pub dir: Direction,
}

/// A bidirectional ring of `n ≥ 2` nodes with `vcs ≥ 1` virtual channels per
/// ring direction.
///
/// # Examples
///
/// ```
/// use genoc_core::network::Network;
/// use genoc_topology::ring::Ring;
///
/// let ring = Ring::new(6, 1);
/// assert_eq!(ring.node_count(), 6);
/// let dateline = Ring::with_vcs(6, 2, 1);
/// assert!(dateline.port_count() > ring.port_count());
/// ```
#[derive(Clone, Debug)]
pub struct Ring {
    fabric: Fabric,
    nodes: usize,
    vcs: usize,
    /// `lookup[node][dir][vc][in/out]`.
    lookup: Vec<Vec<Vec<[PortId; 2]>>>,
    info: Vec<RingPortInfo>,
}

impl Ring {
    /// Builds a plain ring (one virtual channel).
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2` or `capacity == 0`.
    pub fn new(nodes: usize, capacity: u32) -> Self {
        Ring::with_vcs(nodes, 1, capacity)
    }

    /// Builds a ring with `vcs` virtual channels per ring direction.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2`, `vcs == 0`, or `capacity == 0`.
    pub fn with_vcs(nodes: usize, vcs: usize, capacity: u32) -> Self {
        assert!(nodes >= 2, "a ring needs at least two nodes");
        assert!(vcs >= 1, "at least one virtual channel");
        let name = if vcs == 1 {
            format!("ring-{nodes}")
        } else {
            format!("ring-{nodes}-vc{vcs}")
        };
        let mut fabric = Fabric::builder(name);
        let mut lookup = Vec::with_capacity(nodes);
        let mut info = Vec::new();
        for node in 0..nodes {
            let n = fabric.add_node();
            let li = fabric.add_port(n, Direction::In, true, capacity, format!("({node}) L in"));
            info.push(RingPortInfo {
                node,
                kind: RingPortKind::Local,
                dir: Direction::In,
            });
            let lo = fabric.add_port(n, Direction::Out, true, capacity, format!("({node}) L out"));
            debug_assert_eq!(lo.index(), li.index() + 1, "L out must follow L in");
            info.push(RingPortInfo {
                node,
                kind: RingPortKind::Local,
                dir: Direction::Out,
            });
            let mut per_dir = Vec::with_capacity(2);
            for dir in RingDir::ALL {
                let mut per_vc = Vec::with_capacity(vcs);
                for vc in 0..vcs {
                    let pin = fabric.add_port(
                        n,
                        Direction::In,
                        false,
                        capacity,
                        format!("({node}) {}{vc} in", dir.label()),
                    );
                    info.push(RingPortInfo {
                        node,
                        kind: RingPortKind::Ring { dir, vc },
                        dir: Direction::In,
                    });
                    let pout = fabric.add_port(
                        n,
                        Direction::Out,
                        false,
                        capacity,
                        format!("({node}) {}{vc} out", dir.label()),
                    );
                    info.push(RingPortInfo {
                        node,
                        kind: RingPortKind::Ring { dir, vc },
                        dir: Direction::Out,
                    });
                    per_vc.push([pin, pout]);
                }
                per_dir.push(per_vc);
            }
            lookup.push(per_dir);
        }
        for node in 0..nodes {
            #[allow(clippy::needless_range_loop)] // `vc` pairs entries across nodes
            for vc in 0..vcs {
                let cw_out = lookup[node][RingDir::Cw.index()][vc][1];
                let cw_in = lookup[(node + 1) % nodes][RingDir::Cw.index()][vc][0];
                fabric.connect(cw_out, cw_in);
                let ccw_out = lookup[node][RingDir::Ccw.index()][vc][1];
                let ccw_in = lookup[(node + nodes - 1) % nodes][RingDir::Ccw.index()][vc][0];
                fabric.connect(ccw_out, ccw_in);
            }
        }
        Ring {
            fabric: fabric.build(),
            nodes,
            vcs,
            lookup,
            info,
        }
    }

    /// Number of virtual channels per ring direction.
    pub fn vc_count(&self) -> usize {
        self.vcs
    }

    /// The ring link port of `node` in direction `dir` on channel `vc`.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `vc` is out of range.
    pub fn ring_port(&self, node: usize, dir: RingDir, vc: usize, d: Direction) -> PortId {
        self.lookup[node][dir.index()][vc][if d == Direction::In { 0 } else { 1 }]
    }

    /// Node, kind, and direction of a port.
    pub fn info(&self, p: PortId) -> RingPortInfo {
        self.info[p.index()]
    }

    /// Clockwise distance from node `a` to node `b`.
    pub fn cw_distance(&self, a: usize, b: usize) -> usize {
        (b + self.nodes - a) % self.nodes
    }
}

impl Network for Ring {
    fn port_count(&self) -> usize {
        self.fabric.port_count()
    }

    fn node_count(&self) -> usize {
        self.fabric.node_count()
    }

    fn attrs(&self, p: PortId) -> PortAttrs {
        self.fabric.attrs(p)
    }

    fn next_in(&self, p: PortId) -> Option<PortId> {
        self.fabric.next_in(p)
    }

    fn local_in(&self, n: NodeId) -> PortId {
        self.fabric.local_in(n)
    }

    fn local_out(&self, n: NodeId) -> PortId {
        self.fabric.local_out(n)
    }

    fn port_label(&self, p: PortId) -> String {
        self.fabric.port_label(p)
    }

    fn topology_name(&self) -> String {
        self.fabric.topology_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_count_scales_with_vcs() {
        // Per node: 2 local + 4 ring ports per vc.
        assert_eq!(Ring::new(5, 1).port_count(), 5 * (2 + 4));
        assert_eq!(Ring::with_vcs(5, 2, 1).port_count(), 5 * (2 + 8));
    }

    #[test]
    fn links_wrap_around() {
        let ring = Ring::new(4, 1);
        let out = ring.ring_port(3, RingDir::Cw, 0, Direction::Out);
        let target = ring.next_in(out).unwrap();
        assert_eq!(ring.info(target).node, 0);
        let out = ring.ring_port(0, RingDir::Ccw, 0, Direction::Out);
        let target = ring.next_in(out).unwrap();
        assert_eq!(ring.info(target).node, 3);
    }

    #[test]
    fn vcs_share_links_but_not_ports() {
        let ring = Ring::with_vcs(3, 2, 1);
        let v0 = ring.ring_port(0, RingDir::Cw, 0, Direction::Out);
        let v1 = ring.ring_port(0, RingDir::Cw, 1, Direction::Out);
        assert_ne!(v0, v1);
        let t0 = ring.info(ring.next_in(v0).unwrap());
        let t1 = ring.info(ring.next_in(v1).unwrap());
        assert_eq!(t0.node, t1.node);
        assert_eq!(
            t0.kind,
            RingPortKind::Ring {
                dir: RingDir::Cw,
                vc: 0
            }
        );
        assert_eq!(
            t1.kind,
            RingPortKind::Ring {
                dir: RingDir::Cw,
                vc: 1
            }
        );
    }

    #[test]
    fn cw_distance_wraps() {
        let ring = Ring::new(6, 1);
        assert_eq!(ring.cw_distance(4, 1), 3);
        assert_eq!(ring.cw_distance(1, 4), 3);
        assert_eq!(ring.cw_distance(2, 2), 0);
    }

    #[test]
    fn info_round_trips() {
        let ring = Ring::with_vcs(4, 2, 1);
        for p in ring.ports() {
            let i = ring.info(p);
            if let RingPortKind::Ring { dir, vc } = i.kind {
                assert_eq!(ring.ring_port(i.node, dir, vc, i.dir), p);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn tiny_ring_is_rejected() {
        let _ = Ring::new(1, 1);
    }
}
