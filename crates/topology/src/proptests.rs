//! Property-based tests of the topology constructions: wiring symmetry,
//! port-count formulas, and lookup round-trips over random dimensions.

#![cfg(test)]

use genoc_core::network::{Direction, Network};
use proptest::prelude::*;

use crate::mesh::Mesh;
use crate::ring::{Ring, RingDir};
use crate::spidergon::Spidergon;
use crate::torus::Torus;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every non-local out-port drives a link ending at an in-port of a
    /// different node, and local ports never link.
    #[test]
    fn mesh_wiring_is_well_formed(w in 1usize..=8, h in 1usize..=8, cap in 1u32..=4) {
        let mesh = Mesh::new(w, h, cap);
        for p in mesh.ports() {
            let a = mesh.attrs(p);
            prop_assert_eq!(a.capacity, cap);
            match mesh.next_in(p) {
                Some(q) => {
                    let b = mesh.attrs(q);
                    prop_assert_eq!(a.direction, Direction::Out);
                    prop_assert!(!a.local);
                    prop_assert_eq!(b.direction, Direction::In);
                    prop_assert!(!b.local);
                    prop_assert_ne!(a.node, b.node);
                }
                None => {
                    prop_assert!(a.direction == Direction::In || a.local);
                }
            }
        }
        prop_assert_eq!(
            mesh.port_count(),
            2 * w * h + 4 * ((w - 1) * h + w * (h - 1))
        );
    }

    /// Mesh links are symmetric: following a link and looking back across
    /// the reverse link returns to the starting node.
    #[test]
    fn mesh_links_pair_up(w in 2usize..=6, h in 2usize..=6) {
        let mesh = Mesh::new(w, h, 1);
        for p in mesh.ports() {
            if let Some(q) = mesh.next_in(p) {
                let back_card = match mesh.info(p).card {
                    crate::mesh::Cardinal::East => crate::mesh::Cardinal::West,
                    crate::mesh::Cardinal::West => crate::mesh::Cardinal::East,
                    crate::mesh::Cardinal::North => crate::mesh::Cardinal::South,
                    crate::mesh::Cardinal::South => crate::mesh::Cardinal::North,
                    crate::mesh::Cardinal::Local => unreachable!("local ports have no links"),
                };
                prop_assert_eq!(mesh.info(q).card, back_card);
                let back_out = mesh
                    .trans(q, back_card, Direction::Out)
                    .expect("reverse link exists");
                let home = mesh.next_in(back_out).expect("links are bidirectional pairs");
                prop_assert_eq!(mesh.attrs(home).node, mesh.attrs(p).node);
            }
        }
    }

    /// Torus wrap distances: walking `width` times east returns home on
    /// every row and channel.
    #[test]
    fn torus_rows_are_rings(w in 2usize..=6, h in 2usize..=5, vcs in 1usize..=2) {
        let torus = Torus::with_vcs(w, h, vcs, 1);
        for y in 0..h {
            for vc in 0..vcs {
                let mut node = torus.node(0, y);
                for _ in 0..w {
                    let (x, yy) = torus.node_coords(node);
                    let out = torus
                        .port(x, yy, crate::mesh::Cardinal::East, vc, Direction::Out)
                        .expect("torus nodes have all ports");
                    let next = torus.next_in(out).expect("linked");
                    node = torus.attrs(next).node;
                }
                prop_assert_eq!(node, torus.node(0, y), "row {} vc {}", y, vc);
            }
        }
    }

    /// Ring: cw then ccw is the identity on nodes.
    #[test]
    fn ring_directions_are_inverse(n in 2usize..=12, vcs in 1usize..=3) {
        let ring = Ring::with_vcs(n, vcs, 1);
        for node in 0..n {
            for vc in 0..vcs {
                let cw = ring.ring_port(node, RingDir::Cw, vc, Direction::Out);
                let there = ring.info(ring.next_in(cw).unwrap()).node;
                let ccw = ring.ring_port(there, RingDir::Ccw, vc, Direction::Out);
                let back = ring.info(ring.next_in(ccw).unwrap()).node;
                prop_assert_eq!(back, node);
            }
        }
    }

    /// Spidergon: the across link is an involution on nodes.
    #[test]
    fn spidergon_across_is_involutive(half in 2usize..=8) {
        let size = 2 * half;
        let s = Spidergon::new(size, 1);
        for node in 0..size {
            let out = s.across_port(node, Direction::Out);
            let there = s.info(s.next_in(out).unwrap()).node;
            let out2 = s.across_port(there, Direction::Out);
            let back = s.info(s.next_in(out2).unwrap()).node;
            prop_assert_eq!(back, node);
            prop_assert_eq!(there, (node + half) % size);
        }
    }

    /// Every topology has exactly one local in- and out-port per node.
    #[test]
    fn local_ports_are_unique(n in 2usize..=8) {
        let nets: Vec<Box<dyn Network>> = vec![
            Box::new(Mesh::new(n, 2, 1)),
            Box::new(Ring::new(n, 1)),
            Box::new(Torus::new(n.max(2), 2, 1)),
            Box::new(Spidergon::new(2 * n.div_ceil(2).max(2), 1)),
        ];
        for net in &nets {
            for node in net.nodes() {
                let li = net.local_in(node);
                let lo = net.local_out(node);
                prop_assert!(net.attrs(li).is_local_in());
                prop_assert!(net.attrs(lo).is_local_out());
                prop_assert_eq!(net.attrs(li).node, node);
                prop_assert_eq!(net.attrs(lo).node, node);
            }
        }
    }
}
