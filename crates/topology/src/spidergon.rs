//! The Spidergon topology: a bidirectional ring with *across* links.
//!
//! Spidergon (STMicroelectronics) connects `N` nodes (N even) in a
//! bidirectional ring and adds a chord from every node `i` to its antipode
//! `i + N/2`. It is the other case study of the GeNoC literature (Borrione,
//! Helmy, Pierre & Schmaltz, EURASIP 2009, cited as reference 6 by the paper).
//! Across-first routing without virtual channels has a cyclic dependency
//! graph (the ring segments chain around), and the dateline repair with two
//! ring virtual channels restores acyclicity — both of which the
//! `genoc-verif` checkers demonstrate.

use genoc_core::network::{Direction, Network, PortAttrs};
use genoc_core::{NodeId, PortId};

use crate::fabric::Fabric;
use crate::ring::RingDir;

/// What kind of port a Spidergon port is.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SpidergonPortKind {
    /// Local injection/ejection port.
    Local,
    /// Ring link port in the given direction on the given virtual channel.
    Ring {
        /// Travel direction of the link.
        dir: RingDir,
        /// Virtual-channel index.
        vc: usize,
    },
    /// Across link port toward the antipodal node.
    Across,
}

/// Node index, kind, and direction of a Spidergon port.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SpidergonPortInfo {
    /// Owning node index.
    pub node: usize,
    /// Port kind.
    pub kind: SpidergonPortKind,
    /// In or out.
    pub dir: Direction,
}

/// A Spidergon of `size` nodes (even, at least 4) with `vcs` virtual
/// channels per ring direction.
///
/// # Examples
///
/// ```
/// use genoc_core::network::{Direction, Network};
/// use genoc_topology::spidergon::Spidergon;
///
/// let s = Spidergon::new(8, 1);
/// let across = s.across_port(1, Direction::Out);
/// let target = s.info(s.next_in(across).unwrap());
/// assert_eq!(target.node, 5, "across links join antipodal nodes");
/// ```
#[derive(Clone, Debug)]
pub struct Spidergon {
    fabric: Fabric,
    size: usize,
    vcs: usize,
    /// `ring_lookup[node][dir][vc][in/out]`.
    ring_lookup: Vec<Vec<Vec<[PortId; 2]>>>,
    /// `across_lookup[node][in/out]`.
    across_lookup: Vec<[PortId; 2]>,
    info: Vec<SpidergonPortInfo>,
}

impl Spidergon {
    /// Builds a Spidergon with one ring virtual channel.
    ///
    /// # Panics
    ///
    /// Panics if `size` is odd or smaller than 4, or `capacity == 0`.
    pub fn new(size: usize, capacity: u32) -> Self {
        Spidergon::with_vcs(size, 1, capacity)
    }

    /// Builds a Spidergon with `vcs` virtual channels per ring direction
    /// (across links are never part of a cycle and need no channels).
    ///
    /// # Panics
    ///
    /// Panics if `size` is odd or smaller than 4, `vcs == 0`, or
    /// `capacity == 0`.
    pub fn with_vcs(size: usize, vcs: usize, capacity: u32) -> Self {
        assert!(
            size >= 4 && size.is_multiple_of(2),
            "spidergon size must be even and at least 4"
        );
        assert!(vcs >= 1, "at least one virtual channel");
        let name = if vcs == 1 {
            format!("spidergon-{size}")
        } else {
            format!("spidergon-{size}-vc{vcs}")
        };
        let mut fabric = Fabric::builder(name);
        let mut ring_lookup = Vec::with_capacity(size);
        let mut across_lookup = Vec::with_capacity(size);
        let mut info = Vec::new();
        for node in 0..size {
            let n = fabric.add_node();
            fabric.add_port(n, Direction::In, true, capacity, format!("({node}) L in"));
            info.push(SpidergonPortInfo {
                node,
                kind: SpidergonPortKind::Local,
                dir: Direction::In,
            });
            fabric.add_port(n, Direction::Out, true, capacity, format!("({node}) L out"));
            info.push(SpidergonPortInfo {
                node,
                kind: SpidergonPortKind::Local,
                dir: Direction::Out,
            });
            let mut per_dir = Vec::with_capacity(2);
            for dir in RingDir::ALL {
                let mut per_vc = Vec::with_capacity(vcs);
                for vc in 0..vcs {
                    let pin = fabric.add_port(
                        n,
                        Direction::In,
                        false,
                        capacity,
                        format!("({node}) {}{vc} in", dir.label()),
                    );
                    info.push(SpidergonPortInfo {
                        node,
                        kind: SpidergonPortKind::Ring { dir, vc },
                        dir: Direction::In,
                    });
                    let pout = fabric.add_port(
                        n,
                        Direction::Out,
                        false,
                        capacity,
                        format!("({node}) {}{vc} out", dir.label()),
                    );
                    info.push(SpidergonPortInfo {
                        node,
                        kind: SpidergonPortKind::Ring { dir, vc },
                        dir: Direction::Out,
                    });
                    per_vc.push([pin, pout]);
                }
                per_dir.push(per_vc);
            }
            ring_lookup.push(per_dir);
            let ain = fabric.add_port(n, Direction::In, false, capacity, format!("({node}) A in"));
            info.push(SpidergonPortInfo {
                node,
                kind: SpidergonPortKind::Across,
                dir: Direction::In,
            });
            let aout = fabric.add_port(
                n,
                Direction::Out,
                false,
                capacity,
                format!("({node}) A out"),
            );
            info.push(SpidergonPortInfo {
                node,
                kind: SpidergonPortKind::Across,
                dir: Direction::Out,
            });
            across_lookup.push([ain, aout]);
        }
        for node in 0..size {
            #[allow(clippy::needless_range_loop)] // `vc` pairs entries across nodes
            for vc in 0..vcs {
                let cw_out = ring_lookup[node][0][vc][1];
                let cw_in = ring_lookup[(node + 1) % size][0][vc][0];
                fabric.connect(cw_out, cw_in);
                let ccw_out = ring_lookup[node][1][vc][1];
                let ccw_in = ring_lookup[(node + size - 1) % size][1][vc][0];
                fabric.connect(ccw_out, ccw_in);
            }
            let a_out = across_lookup[node][1];
            let a_in = across_lookup[(node + size / 2) % size][0];
            fabric.connect(a_out, a_in);
        }
        Spidergon {
            fabric: fabric.build(),
            size,
            vcs,
            ring_lookup,
            across_lookup,
            info,
        }
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of virtual channels per ring direction.
    pub fn vc_count(&self) -> usize {
        self.vcs
    }

    /// The ring link port of `node` in direction `dir` on channel `vc`.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `vc` is out of range.
    pub fn ring_port(&self, node: usize, dir: RingDir, vc: usize, d: Direction) -> PortId {
        let di = match dir {
            RingDir::Cw => 0,
            RingDir::Ccw => 1,
        };
        self.ring_lookup[node][di][vc][if d == Direction::In { 0 } else { 1 }]
    }

    /// The across link port of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn across_port(&self, node: usize, d: Direction) -> PortId {
        self.across_lookup[node][if d == Direction::In { 0 } else { 1 }]
    }

    /// Node, kind, and direction of a port.
    pub fn info(&self, p: PortId) -> SpidergonPortInfo {
        self.info[p.index()]
    }

    /// Clockwise distance from node `a` to node `b`.
    pub fn cw_distance(&self, a: usize, b: usize) -> usize {
        (b + self.size - a) % self.size
    }
}

impl Network for Spidergon {
    fn port_count(&self) -> usize {
        self.fabric.port_count()
    }

    fn node_count(&self) -> usize {
        self.fabric.node_count()
    }

    fn attrs(&self, p: PortId) -> PortAttrs {
        self.fabric.attrs(p)
    }

    fn next_in(&self, p: PortId) -> Option<PortId> {
        self.fabric.next_in(p)
    }

    fn local_in(&self, n: NodeId) -> PortId {
        self.fabric.local_in(n)
    }

    fn local_out(&self, n: NodeId) -> PortId {
        self.fabric.local_out(n)
    }

    fn port_label(&self, p: PortId) -> String {
        self.fabric.port_label(p)
    }

    fn topology_name(&self) -> String {
        self.fabric.topology_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_count_matches_formula() {
        // Per node: 2 local + 4 ring per vc + 2 across.
        assert_eq!(Spidergon::new(8, 1).port_count(), 8 * 8);
        assert_eq!(Spidergon::with_vcs(8, 2, 1).port_count(), 8 * 12);
    }

    #[test]
    fn across_links_are_antipodal_and_symmetric() {
        let s = Spidergon::new(8, 1);
        for node in 0..8 {
            let out = s.across_port(node, Direction::Out);
            let target = s.info(s.next_in(out).unwrap());
            assert_eq!(target.node, (node + 4) % 8);
            assert_eq!(target.kind, SpidergonPortKind::Across);
        }
    }

    #[test]
    fn ring_links_wrap() {
        let s = Spidergon::new(6, 1);
        let out = s.ring_port(5, RingDir::Cw, 0, Direction::Out);
        assert_eq!(s.info(s.next_in(out).unwrap()).node, 0);
    }

    #[test]
    #[should_panic(expected = "even and at least 4")]
    fn odd_size_is_rejected() {
        let _ = Spidergon::new(5, 1);
    }

    #[test]
    fn info_round_trips() {
        let s = Spidergon::with_vcs(6, 2, 1);
        for p in s.ports() {
            let i = s.info(p);
            match i.kind {
                SpidergonPortKind::Ring { dir, vc } => {
                    assert_eq!(s.ring_port(i.node, dir, vc, i.dir), p)
                }
                SpidergonPortKind::Across => assert_eq!(s.across_port(i.node, i.dir), p),
                SpidergonPortKind::Local => {}
            }
        }
    }
}
