//! [`Fabric`]: the shared port/node/link bookkeeping behind every concrete
//! topology.
//!
//! A topology type (mesh, torus, ring, Spidergon) owns a `Fabric` plus its
//! own coordinate logic, and implements [`Network`] by delegation. The
//! [`FabricBuilder`] validates the wiring as it is declared: links connect
//! out-ports to in-ports, every node has exactly one local in-port and one
//! local out-port, and capacities are non-zero.

use genoc_core::network::{Direction, Network, PortAttrs};
use genoc_core::{NodeId, PortId};

#[derive(Clone, Debug)]
struct PortRecord {
    node: NodeId,
    direction: Direction,
    local: bool,
    capacity: u32,
    label: String,
}

/// A validated port/link structure implementing [`Network`].
#[derive(Clone, Debug)]
pub struct Fabric {
    name: String,
    ports: Vec<PortRecord>,
    next_in: Vec<Option<PortId>>,
    local_in: Vec<PortId>,
    local_out: Vec<PortId>,
}

impl Fabric {
    /// Starts building a fabric with the given topology name.
    pub fn builder(name: impl Into<String>) -> FabricBuilder {
        FabricBuilder {
            name: name.into(),
            ports: Vec::new(),
            next_in: Vec::new(),
            local_in: Vec::new(),
            local_out: Vec::new(),
        }
    }
}

impl Network for Fabric {
    fn port_count(&self) -> usize {
        self.ports.len()
    }

    fn node_count(&self) -> usize {
        self.local_in.len()
    }

    fn attrs(&self, p: PortId) -> PortAttrs {
        let r = &self.ports[p.index()];
        PortAttrs {
            node: r.node,
            direction: r.direction,
            local: r.local,
            capacity: r.capacity,
        }
    }

    fn next_in(&self, p: PortId) -> Option<PortId> {
        self.next_in[p.index()]
    }

    fn local_in(&self, n: NodeId) -> PortId {
        self.local_in[n.index()]
    }

    fn local_out(&self, n: NodeId) -> PortId {
        self.local_out[n.index()]
    }

    fn port_label(&self, p: PortId) -> String {
        self.ports[p.index()].label.clone()
    }

    fn topology_name(&self) -> String {
        self.name.clone()
    }
}

/// Incremental construction of a [`Fabric`].
#[derive(Clone, Debug)]
pub struct FabricBuilder {
    name: String,
    ports: Vec<PortRecord>,
    next_in: Vec<Option<PortId>>,
    local_in: Vec<Option<PortId>>,
    local_out: Vec<Option<PortId>>,
}

impl FabricBuilder {
    /// Registers a new node and returns its identifier. Nodes are numbered in
    /// registration order.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from_index(self.local_in.len());
        self.local_in.push(None);
        self.local_out.push(None);
        id
    }

    /// Registers a port on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero, if `node` was not registered, or if a
    /// second local port of the same direction is declared for a node.
    pub fn add_port(
        &mut self,
        node: NodeId,
        direction: Direction,
        local: bool,
        capacity: u32,
        label: impl Into<String>,
    ) -> PortId {
        assert!(capacity > 0, "ports need at least one buffer");
        assert!(node.index() < self.local_in.len(), "unregistered node");
        let id = PortId::from_index(self.ports.len());
        self.ports.push(PortRecord {
            node,
            direction,
            local,
            capacity,
            label: label.into(),
        });
        self.next_in.push(None);
        if local {
            let slot = match direction {
                Direction::In => &mut self.local_in[node.index()],
                Direction::Out => &mut self.local_out[node.index()],
            };
            assert!(
                slot.is_none(),
                "node {node} already has a local {direction:?} port"
            );
            *slot = Some(id);
        }
        id
    }

    /// Declares the link driven by out-port `from`, terminating at in-port
    /// `to`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not a non-local out-port, if `to` is not an
    /// in-port, or if `from` already drives a link.
    pub fn connect(&mut self, from: PortId, to: PortId) {
        let f = &self.ports[from.index()];
        let t = &self.ports[to.index()];
        assert_eq!(f.direction, Direction::Out, "links start at out-ports");
        assert!(!f.local, "local ejection ports do not drive links");
        assert_eq!(t.direction, Direction::In, "links end at in-ports");
        assert!(!t.local, "local injection ports are not link targets");
        assert!(
            self.next_in[from.index()].is_none(),
            "port {from} already linked"
        );
        self.next_in[from.index()] = Some(to);
    }

    /// Finalises the fabric.
    ///
    /// # Panics
    ///
    /// Panics if some node lacks a local in- or out-port, or if a non-local
    /// out-port was left unconnected (dangling links indicate a topology
    /// construction bug).
    pub fn build(self) -> Fabric {
        let mut local_in = Vec::with_capacity(self.local_in.len());
        let mut local_out = Vec::with_capacity(self.local_out.len());
        for (i, (li, lo)) in self.local_in.iter().zip(&self.local_out).enumerate() {
            local_in.push(li.unwrap_or_else(|| panic!("node n{i} lacks a local in-port")));
            local_out.push(lo.unwrap_or_else(|| panic!("node n{i} lacks a local out-port")));
        }
        for (i, r) in self.ports.iter().enumerate() {
            if r.direction == Direction::Out && !r.local {
                assert!(
                    self.next_in[i].is_some(),
                    "out-port {} ({}) drives no link",
                    i,
                    r.label
                );
            }
        }
        Fabric {
            name: self.name,
            ports: self.ports,
            next_in: self.next_in,
            local_in,
            local_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_fabric() -> Fabric {
        let mut b = Fabric::builder("pair");
        let n0 = b.add_node();
        let n1 = b.add_node();
        b.add_port(n0, Direction::In, true, 1, "(0) L in");
        b.add_port(n0, Direction::Out, true, 1, "(0) L out");
        let f_out = b.add_port(n0, Direction::Out, false, 2, "(0) F out");
        b.add_port(n1, Direction::In, true, 1, "(1) L in");
        b.add_port(n1, Direction::Out, true, 1, "(1) L out");
        let f_in = b.add_port(n1, Direction::In, false, 2, "(1) F in");
        b.connect(f_out, f_in);
        b.build()
    }

    #[test]
    fn fabric_implements_network() {
        let f = two_node_fabric();
        assert_eq!(f.node_count(), 2);
        assert_eq!(f.port_count(), 6);
        assert_eq!(f.topology_name(), "pair");
        let n0 = NodeId::from_index(0);
        assert!(f.attrs(f.local_in(n0)).is_local_in());
        assert!(f.attrs(f.local_out(n0)).is_local_out());
    }

    #[test]
    fn links_resolve_through_next_in() {
        let f = two_node_fabric();
        let f_out = f.ports().find(|&p| f.port_label(p) == "(0) F out").unwrap();
        let target = f.next_in(f_out).unwrap();
        assert_eq!(f.port_label(target), "(1) F in");
        assert_eq!(f.attrs(target).capacity, 2);
    }

    #[test]
    #[should_panic(expected = "lacks a local in-port")]
    fn missing_local_port_is_rejected() {
        let mut b = Fabric::builder("bad");
        let n = b.add_node();
        b.add_port(n, Direction::Out, true, 1, "L out");
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "drives no link")]
    fn dangling_out_port_is_rejected() {
        let mut b = Fabric::builder("bad");
        let n = b.add_node();
        b.add_port(n, Direction::In, true, 1, "L in");
        b.add_port(n, Direction::Out, true, 1, "L out");
        b.add_port(n, Direction::Out, false, 1, "E out");
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "links start at out-ports")]
    fn connect_validates_directions() {
        let mut b = Fabric::builder("bad");
        let n = b.add_node();
        let li = b.add_port(n, Direction::In, true, 1, "L in");
        let lo = b.add_port(n, Direction::Out, true, 1, "L out");
        b.connect(li, lo);
    }

    #[test]
    #[should_panic(expected = "at least one buffer")]
    fn zero_capacity_is_rejected() {
        let mut b = Fabric::builder("bad");
        let n = b.add_node();
        b.add_port(n, Direction::In, true, 0, "L in");
    }
}
