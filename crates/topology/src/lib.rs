//! # genoc-topology
//!
//! Concrete network instances for GeNoC-rs:
//!
//! * [`mesh::Mesh`] — the HERMES-style 2D mesh of the paper (Fig. 1),
//! * [`torus::Torus`] — 2D torus with optional virtual channels,
//! * [`ring::Ring`] — bidirectional ring with optional virtual channels,
//! * [`spidergon::Spidergon`] — the Spidergon of the GeNoC case studies,
//!
//! all built on the shared [`fabric::Fabric`] bookkeeping and implementing
//! [`genoc_core::network::Network`].
//!
//! Virtual channels are modelled as *additional ports* multiplexed over a
//! physical link: the port-level dependency analysis of the paper then
//! applies to VC-based deadlock-avoidance schemes (datelines, escape
//! channels) with no change to the theory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fabric;
pub mod mesh;
#[cfg(test)]
mod proptests;
pub mod ring;
pub mod spidergon;
pub mod torus;

pub use crate::fabric::{Fabric, FabricBuilder};
pub use crate::mesh::{Cardinal, Mesh, MeshBuilder};
pub use crate::ring::{Ring, RingDir};
pub use crate::spidergon::Spidergon;
pub use crate::torus::Torus;
