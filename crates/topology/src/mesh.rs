//! The HERMES-style 2D mesh (Fig. 1 of the paper).
//!
//! Every node is an IP core plus a switch with five bi-directional ports:
//! `East`, `West`, `North`, `South` toward the neighbor switches and `Local`
//! toward the IP core. Border nodes only instantiate ports that have a
//! physical neighbor. Following the paper's routing function `Rxy`
//! (`y(d) < y(p) ⟹ North`), *north decreases the y coordinate*: node
//! `(x, 0)` is the northern border.

use genoc_core::network::{Direction, Network, PortAttrs};
use genoc_core::{NodeId, PortId};

use crate::fabric::Fabric;

/// The five port names of a HERMES switch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Cardinal {
    /// Toward `x + 1`.
    East,
    /// Toward `x - 1`.
    West,
    /// Toward `y - 1`.
    North,
    /// Toward `y + 1`.
    South,
    /// Toward the IP core.
    Local,
}

impl Cardinal {
    /// All port names, in a fixed order.
    pub const ALL: [Cardinal; 5] = [
        Cardinal::East,
        Cardinal::West,
        Cardinal::North,
        Cardinal::South,
        Cardinal::Local,
    ];

    /// One-letter abbreviation used in labels (`E`, `W`, `N`, `S`, `L`).
    pub fn letter(self) -> char {
        match self {
            Cardinal::East => 'E',
            Cardinal::West => 'W',
            Cardinal::North => 'N',
            Cardinal::South => 'S',
            Cardinal::Local => 'L',
        }
    }

    fn index(self) -> usize {
        match self {
            Cardinal::East => 0,
            Cardinal::West => 1,
            Cardinal::North => 2,
            Cardinal::South => 3,
            Cardinal::Local => 4,
        }
    }
}

impl std::fmt::Display for Cardinal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// Coordinates and port name of a mesh port — the tuple `⟨x, y, P, D⟩` of the
/// paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MeshPortInfo {
    /// Column of the owning node.
    pub x: usize,
    /// Row of the owning node.
    pub y: usize,
    /// Port name.
    pub card: Cardinal,
    /// Port direction.
    pub dir: Direction,
}

/// Configures and builds a [`Mesh`].
///
/// # Examples
///
/// ```
/// use genoc_topology::mesh::Mesh;
///
/// let mesh = Mesh::builder(4, 3).capacity(2).local_capacity(4).build();
/// assert_eq!((mesh.width(), mesh.height()), (4, 3));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct MeshBuilder {
    width: usize,
    height: usize,
    capacity: u32,
    local_capacity: Option<u32>,
}

impl MeshBuilder {
    /// Buffer depth of every link port (default 1).
    #[must_use]
    pub fn capacity(mut self, capacity: u32) -> Self {
        self.capacity = capacity;
        self
    }

    /// Buffer depth of the local injection/ejection ports (defaults to the
    /// link capacity).
    #[must_use]
    pub fn local_capacity(mut self, capacity: u32) -> Self {
        self.local_capacity = Some(capacity);
        self
    }

    /// Builds the mesh.
    ///
    /// # Panics
    ///
    /// Panics if a dimension or capacity is zero.
    pub fn build(self) -> Mesh {
        Mesh::construct(self)
    }
}

/// A `width × height` HERMES mesh.
///
/// # Examples
///
/// ```
/// use genoc_core::network::{Direction, Network};
/// use genoc_topology::mesh::{Cardinal, Mesh};
///
/// let mesh = Mesh::new(2, 2, 1);
/// // next_in(⟨0,0,E,Out⟩) = ⟨1,0,W,In⟩ — the example from the paper.
/// let e_out = mesh.port(0, 0, Cardinal::East, Direction::Out).unwrap();
/// let w_in = mesh.port(1, 0, Cardinal::West, Direction::In).unwrap();
/// assert_eq!(mesh.next_in(e_out), Some(w_in));
/// ```
#[derive(Clone, Debug)]
pub struct Mesh {
    fabric: Fabric,
    width: usize,
    height: usize,
    /// `lookup[node][card][dir]`.
    lookup: Vec<[[Option<PortId>; 2]; 5]>,
    info: Vec<MeshPortInfo>,
}

impl Mesh {
    /// Builds a mesh with uniform buffer capacity on every port.
    ///
    /// # Panics
    ///
    /// Panics if a dimension or the capacity is zero.
    pub fn new(width: usize, height: usize, capacity: u32) -> Self {
        Mesh::builder(width, height).capacity(capacity).build()
    }

    /// Starts configuring a mesh.
    pub fn builder(width: usize, height: usize) -> MeshBuilder {
        MeshBuilder {
            width,
            height,
            capacity: 1,
            local_capacity: None,
        }
    }

    fn construct(b: MeshBuilder) -> Self {
        assert!(
            b.width > 0 && b.height > 0,
            "mesh dimensions must be positive"
        );
        let local_capacity = b.local_capacity.unwrap_or(b.capacity);
        let mut fabric = Fabric::builder(format!("mesh-{}x{}", b.width, b.height));
        let node_count = b.width * b.height;
        let mut lookup = vec![[[None; 2]; 5]; node_count];
        let mut info = Vec::new();

        let node_at = |x: usize, y: usize| y * b.width + x;
        for y in 0..b.height {
            for x in 0..b.width {
                let node = fabric.add_node();
                debug_assert_eq!(node.index(), node_at(x, y));
                let mut add = |card: Cardinal, dir: Direction, fab: &mut _| {
                    let local = card == Cardinal::Local;
                    let capacity = if local { local_capacity } else { b.capacity };
                    let dir_name = if dir == Direction::In { "in" } else { "out" };
                    let label = format!("({x},{y}) {} {dir_name}", card.letter());
                    let fab: &mut crate::fabric::FabricBuilder = fab;
                    let id = fab.add_port(node, dir, local, capacity, label);
                    lookup[node.index()][card.index()][dir_index(dir)] = Some(id);
                    info.push(MeshPortInfo { x, y, card, dir });
                    id
                };
                add(Cardinal::Local, Direction::In, &mut fabric);
                add(Cardinal::Local, Direction::Out, &mut fabric);
                if x + 1 < b.width {
                    add(Cardinal::East, Direction::In, &mut fabric);
                    add(Cardinal::East, Direction::Out, &mut fabric);
                }
                if x > 0 {
                    add(Cardinal::West, Direction::In, &mut fabric);
                    add(Cardinal::West, Direction::Out, &mut fabric);
                }
                if y > 0 {
                    add(Cardinal::North, Direction::In, &mut fabric);
                    add(Cardinal::North, Direction::Out, &mut fabric);
                }
                if y + 1 < b.height {
                    add(Cardinal::South, Direction::In, &mut fabric);
                    add(Cardinal::South, Direction::Out, &mut fabric);
                }
            }
        }

        // Wire the links: out-port of each node to the facing in-port of the
        // neighbor.
        let port_of =
            |lookup: &Vec<[[Option<PortId>; 2]; 5]>,
             x: usize,
             y: usize,
             c: Cardinal,
             d: Direction| { lookup[node_at(x, y)][c.index()][dir_index(d)] };
        for y in 0..b.height {
            for x in 0..b.width {
                if x + 1 < b.width {
                    let from = port_of(&lookup, x, y, Cardinal::East, Direction::Out).unwrap();
                    let to = port_of(&lookup, x + 1, y, Cardinal::West, Direction::In).unwrap();
                    fabric.connect(from, to);
                }
                if x > 0 {
                    let from = port_of(&lookup, x, y, Cardinal::West, Direction::Out).unwrap();
                    let to = port_of(&lookup, x - 1, y, Cardinal::East, Direction::In).unwrap();
                    fabric.connect(from, to);
                }
                if y > 0 {
                    let from = port_of(&lookup, x, y, Cardinal::North, Direction::Out).unwrap();
                    let to = port_of(&lookup, x, y - 1, Cardinal::South, Direction::In).unwrap();
                    fabric.connect(from, to);
                }
                if y + 1 < b.height {
                    let from = port_of(&lookup, x, y, Cardinal::South, Direction::Out).unwrap();
                    let to = port_of(&lookup, x, y + 1, Cardinal::North, Direction::In).unwrap();
                    fabric.connect(from, to);
                }
            }
        }

        Mesh {
            fabric: fabric.build(),
            width: b.width,
            height: b.height,
            lookup,
            info,
        }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The node at column `x`, row `y`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn node(&self, x: usize, y: usize) -> NodeId {
        assert!(
            x < self.width && y < self.height,
            "mesh coordinates out of range"
        );
        NodeId::from_index(y * self.width + x)
    }

    /// Coordinates of a node.
    pub fn node_coords(&self, n: NodeId) -> (usize, usize) {
        (n.index() % self.width, n.index() / self.width)
    }

    /// The port `⟨x, y, card, dir⟩`, if that port exists (border nodes omit
    /// ports without a neighbor).
    pub fn port(&self, x: usize, y: usize, card: Cardinal, dir: Direction) -> Option<PortId> {
        if x >= self.width || y >= self.height {
            return None;
        }
        self.lookup[y * self.width + x][card.index()][dir_index(dir)]
    }

    /// Coordinates, name, and direction of a port — the accessors `x(p)`,
    /// `y(p)`, `port(p)`, `dir(p)` of the paper in one struct.
    pub fn info(&self, p: PortId) -> MeshPortInfo {
        self.info[p.index()]
    }

    /// The paper's `trans(p, PD)`: the port named `card`/`dir` in the same
    /// node as `p`, if it exists.
    pub fn trans(&self, p: PortId, card: Cardinal, dir: Direction) -> Option<PortId> {
        let i = self.info(p);
        self.port(i.x, i.y, card, dir)
    }
}

fn dir_index(d: Direction) -> usize {
    match d {
        Direction::In => 0,
        Direction::Out => 1,
    }
}

impl Network for Mesh {
    fn port_count(&self) -> usize {
        self.fabric.port_count()
    }

    fn node_count(&self) -> usize {
        self.fabric.node_count()
    }

    fn attrs(&self, p: PortId) -> PortAttrs {
        self.fabric.attrs(p)
    }

    fn next_in(&self, p: PortId) -> Option<PortId> {
        self.fabric.next_in(p)
    }

    fn local_in(&self, n: NodeId) -> PortId {
        self.fabric.local_in(n)
    }

    fn local_out(&self, n: NodeId) -> PortId {
        self.fabric.local_out(n)
    }

    fn port_label(&self, p: PortId) -> String {
        self.fabric.port_label(p)
    }

    fn topology_name(&self) -> String {
        self.fabric.topology_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2WH local ports + 4 ports per adjacent node pair.
    fn expected_ports(w: usize, h: usize) -> usize {
        2 * w * h + 4 * ((w - 1) * h + w * (h - 1))
    }

    #[test]
    fn port_count_matches_formula() {
        for (w, h) in [(1, 1), (2, 2), (3, 2), (4, 4), (5, 1)] {
            let mesh = Mesh::new(w, h, 1);
            assert_eq!(mesh.port_count(), expected_ports(w, h), "{w}x{h}");
        }
    }

    #[test]
    fn two_by_two_has_24_ports() {
        // The instance drawn in Fig. 3 of the paper.
        assert_eq!(Mesh::new(2, 2, 1).port_count(), 24);
    }

    #[test]
    fn border_nodes_omit_dangling_ports() {
        let mesh = Mesh::new(3, 3, 1);
        assert!(mesh.port(0, 0, Cardinal::West, Direction::In).is_none());
        assert!(mesh.port(0, 0, Cardinal::North, Direction::Out).is_none());
        assert!(mesh.port(2, 2, Cardinal::East, Direction::Out).is_none());
        assert!(mesh.port(2, 2, Cardinal::South, Direction::In).is_none());
        assert!(mesh.port(1, 1, Cardinal::East, Direction::In).is_some());
    }

    #[test]
    fn links_wire_facing_ports() {
        let mesh = Mesh::new(3, 3, 1);
        let cases = [
            (1, 1, Cardinal::East, 2, 1, Cardinal::West),
            (1, 1, Cardinal::West, 0, 1, Cardinal::East),
            (1, 1, Cardinal::North, 1, 0, Cardinal::South),
            (1, 1, Cardinal::South, 1, 2, Cardinal::North),
        ];
        for (x, y, c, nx, ny, nc) in cases {
            let out = mesh.port(x, y, c, Direction::Out).unwrap();
            let expect = mesh.port(nx, ny, nc, Direction::In).unwrap();
            assert_eq!(mesh.next_in(out), Some(expect), "{c:?} from ({x},{y})");
        }
    }

    #[test]
    fn node_coords_round_trip() {
        let mesh = Mesh::new(4, 3, 1);
        for y in 0..3 {
            for x in 0..4 {
                assert_eq!(mesh.node_coords(mesh.node(x, y)), (x, y));
            }
        }
    }

    #[test]
    fn trans_moves_within_a_node() {
        let mesh = Mesh::new(2, 2, 1);
        let e_in = mesh.port(0, 0, Cardinal::East, Direction::In).unwrap();
        let l_out = mesh.port(0, 0, Cardinal::Local, Direction::Out).unwrap();
        assert_eq!(
            mesh.trans(e_in, Cardinal::Local, Direction::Out),
            Some(l_out)
        );
        assert_eq!(
            mesh.trans(e_in, Cardinal::West, Direction::Out),
            None,
            "border"
        );
    }

    #[test]
    fn info_matches_lookup() {
        let mesh = Mesh::new(3, 2, 1);
        for p in mesh.ports() {
            let i = mesh.info(p);
            assert_eq!(mesh.port(i.x, i.y, i.card, i.dir), Some(p));
        }
    }

    #[test]
    fn local_capacity_override() {
        let mesh = Mesh::builder(2, 2).capacity(2).local_capacity(5).build();
        let li = mesh.local_in(mesh.node(0, 0));
        let e_out = mesh.port(0, 0, Cardinal::East, Direction::Out).unwrap();
        assert_eq!(mesh.attrs(li).capacity, 5);
        assert_eq!(mesh.attrs(e_out).capacity, 2);
    }

    #[test]
    fn labels_follow_paper_notation() {
        let mesh = Mesh::new(2, 2, 1);
        let p = mesh.port(1, 0, Cardinal::West, Direction::In).unwrap();
        assert_eq!(mesh.port_label(p), "(1,0) W in");
    }

    #[test]
    fn one_by_one_mesh_is_just_a_local_pair() {
        let mesh = Mesh::new(1, 1, 1);
        assert_eq!(mesh.port_count(), 2);
        assert_eq!(mesh.node_count(), 1);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_is_rejected() {
        let _ = Mesh::new(0, 2, 1);
    }
}
